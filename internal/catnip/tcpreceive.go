package catnip

import (
	"time"

	"demikernel/internal/core"
	"demikernel/internal/sched"
	"demikernel/internal/wire"
)

// handleTCP demultiplexes a received TCP segment to its connection or
// listener (paper Figure 4 step 5).
func (l *LibOS) handleTCP(eth wire.EthHeader, ip wire.IPv4Header, body []byte) {
	h, payload, err := wire.ParseTCP(body, ip.Src, ip.Dst)
	if err != nil {
		l.stats.RxBadChecksum++
		if wire.IsChecksumError(err) {
			l.stats.RxChecksumDrops++
		}
		return
	}
	tuple := fourTuple{localPort: h.DstPort, remoteIP: ip.Src, remotePort: h.SrcPort}
	if c, ok := l.conns[tuple]; ok {
		c.receive(eth, h, payload)
		return
	}
	if h.Flags&wire.TCPSyn != 0 && h.Flags&wire.TCPAck == 0 {
		if ln, ok := l.listeners[h.DstPort]; ok && !ln.closed {
			ln.handleSyn(eth, ip, h)
			return
		}
	}
	if h.Flags&wire.TCPRst == 0 {
		l.sendRST(eth, ip, h, len(payload))
	}
	l.stats.RxDroppedNoPort++
}

// sendRST answers a segment for a nonexistent connection (RFC 793 §3.4).
func (l *LibOS) sendRST(eth wire.EthHeader, ip wire.IPv4Header, h wire.TCPHeader, payloadLen int) {
	rst := wire.TCPHeader{
		SrcPort: h.DstPort,
		DstPort: h.SrcPort,
		Flags:   wire.TCPRst | wire.TCPAck,
	}
	if h.Flags&wire.TCPAck != 0 {
		rst.Seq = h.Ack
	}
	rst.Ack = h.Seq + uint32(payloadLen)
	if h.Flags&wire.TCPSyn != 0 {
		rst.Ack++
	}
	hdr := make([]byte, rst.MarshalLen())
	rst.Marshal(hdr, l.cfg.IP, ip.Src, nil)
	l.sendIPv4(eth.Src, ip.Src, wire.ProtoTCP, hdr, nil, 0)
}

// handleSyn performs the passive open: create a SYN_RCVD connection and
// answer SYN-ACK.
func (ln *tcpListener) handleSyn(eth wire.EthHeader, ip wire.IPv4Header, h wire.TCPHeader) {
	if ln.synCount >= 2*ln.backlog {
		return // SYN backlog full: drop, the client retries
	}
	tuple := fourTuple{localPort: h.DstPort, remoteIP: ip.Src, remotePort: h.SrcPort}
	c := newTCPConn(ln.lib, core.InvalidQD, tuple, ln.sock.tenant, ln.sock.tidx)
	c.listener = ln
	c.state = stateSynRcvd
	c.remoteMAC = eth.Src
	c.macKnown = true
	c.irs = h.Seq
	c.rcvNxt = h.Seq + 1
	if h.Opt.HasTimestamp {
		c.tsRecent = h.Opt.TSVal
	}
	if h.Opt.MSS != 0 && int(h.Opt.MSS) < c.mss {
		c.mss = int(h.Opt.MSS)
		c.cc.init(c.mss)
	}
	if h.Opt.HasWScale {
		c.sndWndScale = uint(h.Opt.WScale)
	}
	c.sndWnd = int(h.Window) // unscaled in SYN
	ln.lib.conns[tuple] = c
	ln.synCount++
	// Learn the peer's MAC for future egress.
	ln.lib.arp.Seed(ip.Src, eth.Src)
	c.sendSyn() // transmits SYN-ACK because state is SynRcvd
}

// receive is the per-connection ingress path (paper Figure 4 step 5: the
// fast path processes the segment and wakes blocked work, all inline).
func (c *tcpConn) receive(eth wire.EthHeader, h wire.TCPHeader, payload []byte) {
	if c.err != nil {
		return
	}
	c.remoteMAC = eth.Src
	c.macKnown = true

	if h.Flags&wire.TCPRst != 0 {
		if c.state == stateSynSent {
			c.abort(core.ErrConnRefused)
		} else {
			c.abort(ErrConnReset)
		}
		return
	}

	// RFC 7323: update the timestamp echo source for in-window segments.
	if h.Opt.HasTimestamp && seqLE(h.Seq, c.rcvNxt) {
		c.tsRecent = h.Opt.TSVal
	}

	if c.state == stateSynSent {
		c.receiveSynSent(h)
		return
	}

	if h.Flags&wire.TCPAck != 0 {
		c.processAck(h, len(payload))
	}
	if c.err != nil {
		return // RST-free teardown during ack processing
	}

	if len(payload) > 0 {
		c.processPayload(h.Seq, payload)
	}
	if h.Flags&wire.TCPFin != 0 {
		c.processFin(h.Seq + uint32(len(payload)))
	}
	c.completePops()
	if c.ackPending {
		c.ackH.Wake()
	}
}

// receiveSynSent handles the SYN-ACK of an active open.
func (c *tcpConn) receiveSynSent(h wire.TCPHeader) {
	if h.Flags&(wire.TCPSyn|wire.TCPAck) != wire.TCPSyn|wire.TCPAck {
		return
	}
	if h.Ack != c.iss+1 {
		return // stale
	}
	c.irs = h.Seq
	c.rcvNxt = h.Seq + 1
	if h.Opt.HasTimestamp {
		c.tsRecent = h.Opt.TSVal
	}
	if h.Opt.MSS != 0 && int(h.Opt.MSS) < c.mss {
		c.mss = int(h.Opt.MSS)
		c.cc.init(c.mss)
	}
	if h.Opt.HasWScale {
		c.sndWndScale = uint(h.Opt.WScale)
	}
	c.sndUna = h.Ack
	c.sndWnd = int(h.Window) // unscaled in SYN
	c.dropAckedSegments()
	c.state = stateEstablished
	c.sendPureAck()
	if c.connectOp != nil {
		c.connectOp.Complete(core.QEvent{QD: c.qd, Op: core.OpConnect, NewQD: c.qd})
		c.connectOp = nil
	}
	c.trySend()
}

// processAck handles the acknowledgment and window fields.
func (c *tcpConn) processAck(h wire.TCPHeader, payloadLen int) {
	// Completing the passive open.
	if c.state == stateSynRcvd && seqGE(h.Ack, c.iss+1) {
		c.state = stateEstablished
		c.sndUna = c.iss + 1
		c.dropAckedSegments()
		if c.listener != nil {
			ln := c.listener
			c.listener = nil
			ln.established(c)
		}
	}

	oldWnd := c.sndWnd
	c.sndWnd = int(h.Window) << c.sndWndScale

	switch {
	case seqGT(h.Ack, c.sndUna) && seqLE(h.Ack, c.sndNxt):
		acked := h.Ack - c.sndUna
		c.sndUna = h.Ack
		c.dupAcks = 0
		// RTT sample from the echoed timestamp.
		if h.Opt.HasTimestamp && h.Opt.TSEcr != 0 {
			if d := c.nowTS() - h.Opt.TSEcr; int32(d) >= 0 {
				c.rto.sample(time.Duration(d) * time.Microsecond)
			}
		}
		c.dropAckedSegments()
		c.completePushOps()
		if c.inRecovery {
			if seqGE(c.sndUna, c.recoverSeq) {
				c.inRecovery = false
				c.cc.exitRecovery()
			}
		} else {
			c.cc.onAck(int(acked), c.lib.node.Now())
		}
		c.lib.telCwnd.Observe(int64(c.cc.window()))
		c.armRTO()
		c.advanceCloseStates()
	case h.Ack == c.sndUna && len(c.retransQ) > 0 && payloadLen == 0 &&
		h.Flags&(wire.TCPSyn|wire.TCPFin) == 0 && c.sndWnd == oldWnd:
		c.dupAcks++
		if c.dupAcks == 3 && !c.inRecovery {
			c.fastRetransmit()
		}
	}
	// Window may have opened either way.
	if len(c.sendQ) > 0 || c.finQueued {
		c.senderH.Wake()
	}
}

// dropAckedSegments releases fully acknowledged segments and their buffer
// references (the libOS half of use-after-free protection: a zero-copy
// buffer can only recycle once its last segment is acked; paper §5.3).
func (c *tcpConn) dropAckedSegments() {
	for len(c.retransQ) > 0 {
		seg := &c.retransQ[0]
		if !seqLE(seg.endSeq(), c.sndUna) {
			break
		}
		if seg.buf != nil {
			seg.buf.IOUnref()
		}
		c.retransQ = c.retransQ[1:]
	}
	if len(c.retransQ) == 0 {
		c.rtoArmed = false
	}
}

// completePushOps finishes push qtokens whose last byte is acknowledged:
// the application regains buffer ownership here.
func (c *tcpConn) completePushOps() {
	for len(c.pushOps) > 0 && seqLE(c.pushOps[0].endSeq, c.sndUna) {
		po := c.pushOps[0]
		c.pushOps = c.pushOps[1:]
		po.op.Complete(core.QEvent{QD: c.qd, Op: core.OpPush})
	}
}

// processPayload places received bytes in order, buffering out-of-order
// segments for reassembly.
func (c *tcpConn) processPayload(seq uint32, payload []byte) {
	switch {
	case seq == c.rcvNxt:
		c.deliver(payload)
		c.drainOOO()
		c.ackPending = true
		c.segsSinceAck++
	case seqGT(seq, c.rcvNxt):
		// Future data: hold for reassembly if window allows.
		c.lib.stats.TCPOutOfOrder++
		if c.oooBytes+len(payload) <= c.lib.cfg.RecvBufSize {
			c.insertOOO(seq, payload)
		}
		c.ackPending = true // duplicate ack triggers fast retransmit
		c.lib.stats.TCPDupAcksSent++
	default:
		// Old or partially old data.
		if end := seq + uint32(len(payload)); seqGT(end, c.rcvNxt) {
			c.deliver(payload[c.rcvNxt-seq:])
			c.drainOOO()
		}
		c.ackPending = true
	}
}

// deliver appends in-order payload to the receive queue. The NIC has
// DMA-written the bytes into the DMA-capable heap, so no CPU copy is
// charged (paper §5.3's zero-copy receive). With the heap exhausted the
// segment is dropped without advancing rcvNxt: no ack covers it, so the
// peer retransmits once memory frees up.
func (c *tcpConn) deliver(payload []byte) {
	buf, err := c.copyIn(payload) // charged to the connection's tenant
	if err != nil {
		c.lib.stats.RxAllocDrops++
		return
	}
	buf.SetTraceCtx(c.lib.rxCtx) // the frame's trace context follows its data to the app
	c.recvQ = append(c.recvQ, buf)
	c.recvBytes += len(payload)
	c.rcvNxt += uint32(len(payload))
}

// insertOOO adds payload at seq to the sorted reassembly queue, ignoring
// exact duplicates.
func (c *tcpConn) insertOOO(seq uint32, payload []byte) {
	i := 0
	for i < len(c.oooQ) && seqLT(c.oooQ[i].seq, seq) {
		i++
	}
	if i < len(c.oooQ) && c.oooQ[i].seq == seq {
		return // duplicate
	}
	data := append([]byte(nil), payload...)
	c.oooQ = append(c.oooQ, oooSegment{})
	copy(c.oooQ[i+1:], c.oooQ[i:])
	c.oooQ[i] = oooSegment{seq: seq, data: data}
	c.oooBytes += len(data)
	c.lib.telOOO.Observe(int64(len(c.oooQ)))
}

// drainOOO merges contiguous reassembly segments into the stream.
func (c *tcpConn) drainOOO() {
	for len(c.oooQ) > 0 {
		head := c.oooQ[0]
		if seqGT(head.seq, c.rcvNxt) {
			break
		}
		c.oooQ = c.oooQ[1:]
		c.oooBytes -= len(head.data)
		if end := head.seq + uint32(len(head.data)); seqGT(end, c.rcvNxt) {
			c.deliver(head.data[c.rcvNxt-head.seq:])
		}
	}
}

// processFin handles an in-order FIN at sequence finSeq.
func (c *tcpConn) processFin(finSeq uint32) {
	if c.rcvNxt != finSeq {
		return // out of order; peer will retransmit
	}
	c.rcvNxt++
	c.peerClosed = true
	c.ackPending = true
	switch c.state {
	case stateEstablished, stateSynRcvd:
		c.state = stateCloseWait
	case stateFinWait1:
		c.state = stateClosing
		c.advanceCloseStates()
	case stateFinWait2:
		c.enterTimeWait()
	}
}

// advanceCloseStates moves through the close diagram once our FIN is
// acknowledged.
func (c *tcpConn) advanceCloseStates() {
	finAcked := len(c.retransQ) == 0 && c.sndUna == c.sndNxt
	switch c.state {
	case stateFinWait1:
		if finAcked {
			c.state = stateFinWait2
		}
	case stateClosing:
		if finAcked {
			c.enterTimeWait()
		}
	case stateLastAck:
		if finAcked {
			c.teardown(nil)
		}
	}
}

// enterTimeWait starts the 2*MSL quiet period.
func (c *tcpConn) enterTimeWait() {
	c.state = stateTimeWait
	c.timeWaitUntil = c.lib.node.Now().Add(2 * c.lib.cfg.MSL)
	c.lib.timerWake(c.timeWaitUntil, c.closerH)
	c.closerH.Wake()
}

// abort resets the connection immediately (local error or received RST).
func (c *tcpConn) abort(err error) {
	if c.macKnown && c.state != stateSynSent && err != ErrConnReset {
		// Send a RST for local aborts on established connections.
		rst := wire.TCPHeader{
			SrcPort: c.tuple.localPort, DstPort: c.tuple.remotePort,
			Seq: c.sndNxt, Ack: c.rcvNxt, Flags: wire.TCPRst | wire.TCPAck,
		}
		hdr := make([]byte, rst.MarshalLen())
		rst.Marshal(hdr, c.lib.cfg.IP, c.tuple.remoteIP, nil)
		c.lib.sendIPv4(c.remoteMAC, c.tuple.remoteIP, wire.ProtoTCP, hdr, nil, 0)
	}
	c.teardown(err)
}

// teardown finalizes the connection: releases references, fails pending
// operations, and removes it from the demux table.
func (c *tcpConn) teardown(err error) {
	if c.state == stateClosed {
		return
	}
	c.state = stateClosed
	c.err = err
	if c.err == nil {
		c.err = core.ErrQueueClosed
	}
	delete(c.lib.conns, c.tuple)
	if c.connectOp != nil {
		c.connectOp.Fail(c.qd, core.OpConnect, c.err)
		c.connectOp = nil
	}
	for _, seg := range c.retransQ {
		if seg.buf != nil {
			seg.buf.IOUnref()
		}
	}
	c.retransQ = nil
	for _, it := range c.sendQ {
		it.buf.IOUnref()
	}
	c.sendQ = nil
	for _, po := range c.pushOps {
		po.op.Fail(c.qd, core.OpPush, c.err)
	}
	c.pushOps = nil
	if err == nil {
		// Graceful close: waiting pops see EOF.
		c.peerClosed = true
		c.completePops()
	}
	for _, op := range c.pops {
		op.Fail(c.qd, core.OpPop, c.err)
	}
	c.pops = nil
	for _, b := range c.recvQ {
		b.Free()
	}
	c.recvQ = nil
	c.recvBytes = 0
	c.oooQ = nil
	c.oooBytes = 0
	if c.listener != nil {
		c.listener.synCount--
		c.listener = nil
	}
	// Wake every coroutine so each observes the closed state and exits.
	c.senderH.Wake()
	c.retransH.Wake()
	c.ackH.Wake()
	c.closerH.Wake()
}

// --- Background coroutines (paper §6.3's four) ---

// pollSender drains the send queue when the window reopens.
func (c *tcpConn) pollSender(ctx *sched.Context) sched.Poll {
	if c.state == stateClosed {
		return sched.Done
	}
	c.trySend()
	return sched.Pending
}

// pollRetransmit fires RTO retransmissions of the oldest in-flight segment.
func (c *tcpConn) pollRetransmit(ctx *sched.Context) sched.Poll {
	if c.state == stateClosed {
		return sched.Done
	}
	now := c.lib.node.Now()
	// Persist timer: probe a zero window when nothing is in flight.
	if len(c.retransQ) == 0 {
		if c.persistArmed && len(c.sendQ) > 0 && c.usableWindow() <= 0 {
			if now >= c.persistDeadline {
				c.sendProbe()
				c.rto.backoff() // probe interval backs off like an RTO
				c.persistArmed = false
			} else {
				c.lib.timerWake(c.persistDeadline, c.retransH)
			}
		}
		return sched.Pending
	}
	if !c.rtoArmed {
		return sched.Pending
	}
	if now < c.rtoDeadline {
		c.lib.timerWake(c.rtoDeadline, c.retransH)
		return sched.Pending
	}
	// Timeout: retransmit, back off, collapse the congestion window.
	seg := &c.retransQ[0]
	seg.rtx = true
	c.lib.stats.TCPRetransmits++
	c.rto.backoff()
	c.cc.onTimeout()
	c.inRecovery = false
	if c.rto.exhausted() {
		// The peer is unreachable: give up (RFC 1122 R2 timeout).
		if c.state == stateSynSent {
			c.abort(core.ErrConnRefused)
		} else {
			c.abort(ErrConnTimeout)
		}
		return sched.Done
	}
	c.transmit(seg)
	return sched.Pending
}

// pollAck sends a pure acknowledgment when one is pending and no data
// segment carried it. With DelayedAck configured, a lone segment's ack is
// deferred until the timer fires or a second segment arrives (RFC 1122
// 4.2.3.2's every-other-segment rule).
func (c *tcpConn) pollAck(ctx *sched.Context) sched.Poll {
	if c.state == stateClosed {
		return sched.Done
	}
	if !c.ackPending || c.state == stateSynSent {
		return sched.Pending
	}
	d := c.lib.cfg.DelayedAck
	now := c.lib.node.Now()
	if d > 0 && c.segsSinceAck < 2 && c.state == stateEstablished {
		if !c.ackArmed {
			c.ackArmed = true
			c.ackDeadline = now.Add(d)
			c.lib.timerWake(c.ackDeadline, c.ackH)
			return sched.Pending
		}
		if now < c.ackDeadline {
			c.lib.timerWake(c.ackDeadline, c.ackH)
			return sched.Pending
		}
	}
	c.sendPureAck()
	return sched.Pending
}

// pollCloser finalizes TIME_WAIT and fully closed connections.
func (c *tcpConn) pollCloser(ctx *sched.Context) sched.Poll {
	switch c.state {
	case stateClosed:
		return sched.Done
	case stateTimeWait:
		now := c.lib.node.Now()
		if now >= c.timeWaitUntil {
			c.teardown(nil)
			return sched.Done
		}
		c.lib.timerWake(c.timeWaitUntil, c.closerH)
	}
	return sched.Pending
}
