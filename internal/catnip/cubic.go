package catnip

import (
	"math"

	"demikernel/internal/sim"
)

// cubic implements Cubic congestion control (Ha, Rhee, Xu; RFC 8312), the
// algorithm the paper's Catnip uses (§6.3). State is kept in units of MSS
// for the cubic function and exposed in bytes.
type cubic struct {
	mss        int
	w          float64 // congestion window, segments
	ssthresh   float64 // slow-start threshold, segments
	wMax       float64 // window before the last reduction, segments
	epochStart sim.Time
	haveEpoch  bool
}

const (
	cubicC    = 0.4
	cubicBeta = 0.7
	// initialWindow is RFC 6928's IW10.
	initialWindow = 10
)

func (c *cubic) init(mss int) {
	c.mss = mss
	c.w = initialWindow
	c.ssthresh = math.Inf(1)
	c.haveEpoch = false
}

// window returns the congestion window in bytes.
func (c *cubic) window() int {
	w := int(c.w * float64(c.mss))
	if w < c.mss {
		w = c.mss
	}
	return w
}

// onAck grows the window: exponentially in slow start, along the cubic
// curve in congestion avoidance.
func (c *cubic) onAck(ackedBytes int, now sim.Time) {
	ackedSegs := float64(ackedBytes) / float64(c.mss)
	if c.w < c.ssthresh {
		c.w += ackedSegs
		return
	}
	if !c.haveEpoch {
		c.haveEpoch = true
		c.epochStart = now
		if c.wMax < c.w {
			c.wMax = c.w
		}
	}
	t := float64(now.Sub(c.epochStart)) / 1e9 // seconds
	k := math.Cbrt(c.wMax * (1 - cubicBeta) / cubicC)
	target := cubicC*math.Pow(t-k, 3) + c.wMax
	if target > c.w {
		// Approach the cubic target over the next RTT's worth of acks.
		c.w += (target - c.w) / c.w * ackedSegs
	} else {
		// TCP-friendly floor: minimal reno-like growth.
		c.w += ackedSegs / (100 * c.w)
	}
}

// onLoss reacts to fast-retransmit loss detection: multiplicative decrease
// and a new cubic epoch.
func (c *cubic) onLoss() {
	c.wMax = c.w
	c.w *= cubicBeta
	if c.w < 2 {
		c.w = 2
	}
	c.ssthresh = c.w
	c.haveEpoch = false
}

// exitRecovery completes NewReno-style recovery (window already reduced).
func (c *cubic) exitRecovery() {}

// onTimeout collapses the window after an RTO (RFC 5681 §3.1).
func (c *cubic) onTimeout() {
	c.wMax = c.w
	c.ssthresh = c.w * cubicBeta
	if c.ssthresh < 2 {
		c.ssthresh = 2
	}
	c.w = 1
	c.haveEpoch = false
}
