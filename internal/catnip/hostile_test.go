package catnip

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"demikernel/internal/core"
	"demikernel/internal/memory"
	"demikernel/internal/simnet"
)

// TestHostileLinkProperty drives bidirectional TCP transfers over links
// with combined loss, duplication and reordering across many seeds: the
// streams must always arrive intact and the world must always quiesce.
// This is the strongest single check on the TCP stack's recovery machinery
// (retransmission, reassembly, dup suppression, RTO backoff together).
func TestHostileLinkProperty(t *testing.T) {
	const total = 48 << 10
	for seed := uint64(1); seed <= 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			link := simnet.DefaultLink()
			link.LossProb = 0.03
			link.DupProb = 0.03
			link.ReorderProb = 0.15
			link.ReorderJitter = 30 * time.Microsecond
			eng, la, lb := pair(t, seed, link, true)

			sentA := patterned(total, byte(seed))
			sentB := patterned(total, byte(seed*7))
			var gotAtB, gotAtA bytes.Buffer

			// B: accept, then echo-independent full-duplex: consume A's
			// stream while sending its own.
			eng.Spawn(lb.Node(), func() {
				qd, _ := lb.Socket(core.SockStream)
				lb.Bind(qd, lb.Addr(80))
				lb.Listen(qd, 4)
				aqt, _ := lb.Accept(qd)
				ev, err := lb.Wait(aqt)
				if err != nil {
					return
				}
				conn := ev.NewQD
				wqt, _ := lb.Push(conn, core.SGA(copyToHeap(lb, sentB)))
				pending := []core.QToken{wqt}
				for gotAtB.Len() < total {
					pqt, _ := lb.Pop(conn)
					ev, err := lb.Wait(pqt)
					if err != nil || ev.Err != nil || len(ev.SGA.Segs) == 0 {
						return
					}
					gotAtB.Write(ev.SGA.Flatten())
					ev.SGA.Free()
				}
				lb.WaitAll(pending, -1)
				lb.Close(conn)
				lb.WaitAny(nil, 2*time.Second)
			})
			eng.Spawn(la.Node(), func() {
				qd, _ := la.Socket(core.SockStream)
				cqt, _ := la.Connect(qd, core.Addr{IP: ipB, Port: 80})
				if ev, err := la.Wait(cqt); err != nil || ev.Err != nil {
					t.Errorf("connect: %v %v", err, ev.Err)
					return
				}
				wqt, _ := la.Push(qd, core.SGA(copyToHeap(la, sentA)))
				for gotAtA.Len() < total {
					pqt, _ := la.Pop(qd)
					ev, err := la.Wait(pqt)
					if err != nil || ev.Err != nil || len(ev.SGA.Segs) == 0 {
						return
					}
					gotAtA.Write(ev.SGA.Flatten())
					ev.SGA.Free()
				}
				la.Wait(wqt)
			})
			eng.Run()
			if !bytes.Equal(gotAtB.Bytes(), sentA) {
				t.Fatalf("A->B stream corrupted (%d bytes)", gotAtB.Len())
			}
			if !bytes.Equal(gotAtA.Bytes(), sentB) {
				t.Fatalf("B->A stream corrupted (%d bytes)", gotAtA.Len())
			}
		})
	}
}

func patterned(n int, seed byte) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = seed + byte(i*31)
	}
	return out
}

func copyToHeap(l *LibOS, p []byte) *memory.Buf {
	b := l.Heap().Alloc(len(p))
	copy(b.Bytes(), p)
	return b
}
