package catnip

import (
	"demikernel/internal/memory"
	"demikernel/internal/sched"
)

// Multi-tenant plumbing: the stack itself stays principal-agnostic — it
// tags sockets, connections, coroutine spawns and rx allocations with
// whatever tenant is entered, and the tenant.View enforces the quotas.
// Tenant 0 is the host: untagged, unweighted, the original fast path.

// RegisterTenant assigns tenant tid a dense scheduler index and its
// weighted-fair share of poll cycles (tenant.Registrar).
func (l *LibOS) RegisterTenant(tid uint32, weight uint32) {
	if tid == 0 {
		return
	}
	if l.tenantIdx == nil {
		l.tenantIdx = make(map[uint32]uint8)
	}
	idx, ok := l.tenantIdx[tid]
	if !ok {
		if len(l.tenantIdx)+1 >= sched.MaxTenants {
			panic("catnip: too many tenants for one stack")
		}
		idx = uint8(len(l.tenantIdx) + 1)
		l.tenantIdx[tid] = idx
	}
	l.sched.SetTenantWeight(int(idx), weight)
}

// EnterTenant brackets the start of a tenant's libcall: sockets created
// and connections opened until ExitTenant belong to tid (tenant.Enterer).
func (l *LibOS) EnterTenant(tid uint32) {
	l.curTenant = tid
	l.curTIdx = l.tenantIdx[tid] // 0 for the host and unregistered tenants
}

// ExitTenant restores the host principal.
func (l *LibOS) ExitTenant() {
	l.curTenant = 0
	l.curTIdx = 0
}

// tenantHeapFor returns the tenant-charged heap capability, nil for the
// host (which allocates on the shared heap directly).
func (l *LibOS) tenantHeapFor(tid uint32) *memory.TenantHeap {
	if tid == 0 {
		return nil
	}
	return l.heap.Tenant(tid)
}

// copyIn copies an rx payload into the connection's owning tenant's heap
// region, so an inbound flood exhausts the flooded tenant's quota — and
// only it. The caller handles ErrNoMem by dropping without state advance.
func (c *tcpConn) copyIn(p []byte) (*memory.Buf, error) {
	if c.theap != nil {
		return c.theap.TryCopyFrom(p)
	}
	return memory.TryCopyFrom(c.lib.heap, p)
}

// copyIn is the datagram analogue of tcpConn.copyIn.
func (s *udpSocket) copyIn(p []byte) (*memory.Buf, error) {
	if s.theap != nil {
		return s.theap.TryCopyFrom(p)
	}
	return memory.TryCopyFrom(s.lib.heap, p)
}
