package catnip

import (
	"testing"
	"time"

	"demikernel/internal/core"
	"demikernel/internal/dpdkdev"
	"demikernel/internal/sim"
	"demikernel/internal/simnet"
	"demikernel/internal/trace"
)

// buildEchoWorld wires the standard two-node echo topology with a traced
// server. replayRx, when non-nil, suppresses the live client and instead
// injects the recorded ingress frames into the server at their original
// virtual instants — the paper's §6.3 trace-replay debugging flow.
func buildEchoWorld(t *testing.T, serverLog *trace.Log, replayRx []trace.Event) (eng *sim.Engine) {
	t.Helper()
	eng = sim.NewEngine(77)
	sw := simnet.NewSwitch(eng, simnet.DefaultSwitch())
	ns, nc := eng.NewNode("server"), eng.NewNode("client")
	ps := attachDefault(sw, ns)
	pc := attachDefault(sw, nc)
	scfg := DefaultConfig(ipA)
	scfg.Tracer = serverLog
	ls := New(ns, ps, scfg)
	lc := New(nc, pc, DefaultConfig(ipB))
	ls.SeedARP(ipB, pc.MAC())
	lc.SeedARP(ipA, ps.MAC())

	// The server application is identical in record and replay runs.
	eng.Spawn(ns, echoServer(t, ls, 80))

	if replayRx == nil {
		eng.Spawn(nc, func() {
			qd, _ := lc.Socket(core.SockStream)
			cqt, _ := lc.Connect(qd, core.Addr{IP: ipA, Port: 80})
			if ev, err := lc.Wait(cqt); err != nil || ev.Err != nil {
				t.Errorf("connect: %v %v", err, ev)
				return
			}
			for i := 0; i < 10; i++ {
				push(t, lc, qd, []byte("trace me please!"))
				pqt, _ := lc.Pop(qd)
				ev, err := lc.Wait(pqt)
				if err != nil || ev.Err != nil {
					return
				}
				ev.SGA.Free()
			}
			lc.Close(qd)
			lc.WaitAny(nil, 100*time.Millisecond)
		})
		return eng
	}
	// Replay mode: deliver every recorded ingress frame to the server's
	// port at its original instant; the stack must regenerate the
	// original egress byte sequence.
	for _, e := range replayRx {
		data := e.Data
		eng.At(e.At, ns, func() { ps.InjectRx(data) })
	}
	// Stop once the trace is exhausted and the stack quiesces.
	last := replayRx[len(replayRx)-1].At
	eng.At(last.Add(500*time.Millisecond), nil, func() { eng.Stop() })
	return eng
}

// attachDefault mirrors the pair() helper's port parameters.
func attachDefault(sw *simnet.Switch, n *sim.Node) *dpdkdev.Port {
	return dpdkdev.Attach(sw, n, simnet.DefaultLink(), 8192, 0)
}

func TestTraceReplayReproducesEgress(t *testing.T) {
	// Record a live echo session at the server.
	recorded := &trace.Log{}
	eng := buildEchoWorld(t, recorded, nil)
	eng.Run()
	rx := recorded.Filter(trace.RX)
	tx := recorded.Filter(trace.TX)
	if len(rx) == 0 || len(tx) == 0 {
		t.Fatalf("empty trace: rx=%d tx=%d", len(rx), len(tx))
	}

	// Replay the ingress into a fresh, identically seeded world with no
	// live client.
	replayed := &trace.Log{}
	eng2 := buildEchoWorld(t, replayed, rx)
	eng2.Run()
	if err := trace.EqualData(tx, replayed.Filter(trace.TX)); err != nil {
		t.Fatalf("egress diverged on replay: %v", err)
	}
	if err := trace.EqualData(rx, replayed.Filter(trace.RX)); err != nil {
		t.Fatalf("ingress record diverged: %v", err)
	}
}

func TestTraceSurvivesSerialization(t *testing.T) {
	recorded := &trace.Log{}
	eng := buildEchoWorld(t, recorded, nil)
	eng.Run()
	decoded, err := trace.Decode(recorded.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Equal(recorded.Events, decoded.Events); err != nil {
		t.Fatal(err)
	}
}
