package catnip

import (
	"time"

	"demikernel/internal/sched"
	"demikernel/internal/simnet"
	"demikernel/internal/wire"
)

// arpCache resolves IPv4 addresses to MACs. Unresolved sends queue their
// packets on the pending entry; resolution flushes them in order. The fast
// path assumes the address is cached (paper §6.3); the request/retry logic
// lives in a background coroutine.
type arpCache struct {
	lib     *LibOS
	entries map[wire.IPAddr]simnet.MAC
	pending map[wire.IPAddr]*arpPending
}

// arpPending tracks an unresolved address: queued frames and waiting
// coroutine wakers.
type arpPending struct {
	sends   []pendingSend
	wakers  []sched.Waker
	retries int
}

// pendingSend is a deferred IPv4 transmission.
type pendingSend struct {
	dstIP     wire.IPAddr
	proto     uint8
	transport []byte
	payload   []byte
}

func newARPCache(l *LibOS) *arpCache {
	return &arpCache{
		lib:     l,
		entries: make(map[wire.IPAddr]simnet.MAC),
		pending: make(map[wire.IPAddr]*arpPending),
	}
}

// Seed installs a static entry (tests and benchmarks pre-populate caches to
// measure the fast path, as the paper does).
func (a *arpCache) Seed(ip wire.IPAddr, mac simnet.MAC) {
	a.entries[ip] = mac
}

// hasPending reports whether resolution for ip is still in progress.
func (a *arpCache) hasPending(ip wire.IPAddr) bool {
	_, ok := a.pending[ip]
	return ok
}

// lookup returns the MAC for ip if cached.
func (a *arpCache) lookup(ip wire.IPAddr) (simnet.MAC, bool) {
	m, ok := a.entries[ip]
	return m, ok
}

// sendOrQueue transmits an IPv4 packet if the destination resolves,
// otherwise queues it and kicks resolution.
func (a *arpCache) sendOrQueue(dstIP wire.IPAddr, proto uint8, transport, payload []byte) {
	if mac, ok := a.entries[dstIP]; ok {
		a.lib.sendIPv4(mac, dstIP, proto, transport, payload)
		return
	}
	p, ok := a.pending[dstIP]
	if !ok {
		p = &arpPending{}
		a.pending[dstIP] = p
		a.request(dstIP)
		a.spawnRetrier(dstIP)
	}
	p.sends = append(p.sends, pendingSend{dstIP, proto, transport, payload})
}

// waitResolved registers a coroutine waker to fire when ip resolves; it
// reports whether the address is already resolved.
func (a *arpCache) waitResolved(ip wire.IPAddr, w sched.Waker) bool {
	if _, ok := a.entries[ip]; ok {
		return true
	}
	p, ok := a.pending[ip]
	if !ok {
		p = &arpPending{}
		a.pending[ip] = p
		a.request(ip)
		a.spawnRetrier(ip)
	}
	p.wakers = append(p.wakers, w)
	return false
}

// request broadcasts one ARP request for ip.
func (a *arpCache) request(ip wire.IPAddr) {
	h := wire.ARPHeader{
		Op:       wire.ARPRequest,
		SenderHW: a.lib.port.MAC(),
		SenderIP: a.lib.cfg.IP,
		TargetIP: ip,
	}
	frame := make([]byte, wire.EthHeaderLen+wire.ARPHeaderLen)
	eth := wire.EthHeader{Dst: simnet.Broadcast, Src: a.lib.port.MAC(), EtherType: wire.EtherTypeARP}
	n := eth.Marshal(frame)
	h.Marshal(frame[n:])
	a.lib.txFrame(frame)
}

// spawnRetrier starts a background coroutine re-requesting ip until it
// resolves (bounded retries, then the pending sends are dropped).
func (a *arpCache) spawnRetrier(ip wire.IPAddr) {
	const interval = 500 * time.Microsecond
	const maxRetries = 10
	var h sched.Handle
	h = a.lib.sched.Spawn(sched.Background, sched.Func(func(ctx *sched.Context) sched.Poll {
		p, ok := a.pending[ip]
		if !ok {
			return sched.Done // resolved and flushed
		}
		if p.retries >= maxRetries {
			delete(a.pending, ip)
			for _, w := range p.wakers {
				w.Wake() // let waiters observe failure
			}
			return sched.Done
		}
		p.retries++
		a.request(ip)
		a.lib.timerWake(a.lib.node.Now().Add(interval), h)
		return sched.Pending
	}))
}

// handle processes a received ARP packet: learn the sender, answer
// requests for our address, and flush pending traffic.
func (a *arpCache) handle(payload []byte) {
	h, err := wire.ParseARP(payload)
	if err != nil {
		return
	}
	// Learn the sender mapping opportunistically.
	if !h.SenderIP.IsZero() {
		a.entries[h.SenderIP] = h.SenderHW
		a.flush(h.SenderIP, h.SenderHW)
	}
	if h.Op == wire.ARPRequest && h.TargetIP == a.lib.cfg.IP {
		reply := wire.ARPHeader{
			Op:       wire.ARPReply,
			SenderHW: a.lib.port.MAC(),
			SenderIP: a.lib.cfg.IP,
			TargetHW: h.SenderHW,
			TargetIP: h.SenderIP,
		}
		frame := make([]byte, wire.EthHeaderLen+wire.ARPHeaderLen)
		eth := wire.EthHeader{Dst: h.SenderHW, Src: a.lib.port.MAC(), EtherType: wire.EtherTypeARP}
		n := eth.Marshal(frame)
		reply.Marshal(frame[n:])
		a.lib.txFrame(frame)
	}
}

// flush transmits traffic queued for ip and wakes waiting coroutines.
func (a *arpCache) flush(ip wire.IPAddr, mac simnet.MAC) {
	p, ok := a.pending[ip]
	if !ok {
		return
	}
	delete(a.pending, ip)
	for _, s := range p.sends {
		a.lib.sendIPv4(mac, s.dstIP, s.proto, s.transport, s.payload)
	}
	for _, w := range p.wakers {
		w.Wake()
	}
}
