package catnip

import (
	"time"

	"demikernel/internal/core"
	"demikernel/internal/sched"
	"demikernel/internal/sim"
	"demikernel/internal/simnet"
	"demikernel/internal/wire"
)

// negCacheTTL is how long a failed resolution is remembered. While the
// entry is fresh, sends to the address fail immediately instead of
// re-launching the bounded-retry request train (no retry storm when an
// application hammers an unreachable host).
const negCacheTTL = 5 * time.Millisecond

// arpCache resolves IPv4 addresses to MACs. Unresolved sends queue their
// packets on the pending entry; resolution flushes them in order. The fast
// path assumes the address is cached (paper §6.3); the request/retry logic
// lives in a background coroutine.
type arpCache struct {
	lib     *LibOS
	entries map[wire.IPAddr]simnet.MAC
	pending map[wire.IPAddr]*arpPending
	neg     map[wire.IPAddr]sim.Time // failed resolutions, by expiry
}

// arpPending tracks an unresolved address: queued frames and waiting
// coroutine wakers.
type arpPending struct {
	sends   []pendingSend
	wakers  []sched.Waker
	retries int
}

// pendingSend is a deferred IPv4 transmission. done (optional) reports the
// outcome: nil when the frame went on the wire, ErrHostUnreachable when
// resolution gave up.
type pendingSend struct {
	dstIP     wire.IPAddr
	proto     uint8
	transport []byte
	payload   []byte
	ctx       uint64 // distributed-trace context riding with the deferred frame
	done      func(error)
}

func newARPCache(l *LibOS) *arpCache {
	return &arpCache{
		lib:     l,
		entries: make(map[wire.IPAddr]simnet.MAC),
		pending: make(map[wire.IPAddr]*arpPending),
		neg:     make(map[wire.IPAddr]sim.Time),
	}
}

// Seed installs a static entry (tests and benchmarks pre-populate caches to
// measure the fast path, as the paper does).
func (a *arpCache) Seed(ip wire.IPAddr, mac simnet.MAC) {
	a.entries[ip] = mac
}

// hasPending reports whether resolution for ip is still in progress.
func (a *arpCache) hasPending(ip wire.IPAddr) bool {
	_, ok := a.pending[ip]
	return ok
}

// negative reports whether ip has a fresh failed-resolution entry.
func (a *arpCache) negative(ip wire.IPAddr) bool {
	exp, ok := a.neg[ip]
	if !ok {
		return false
	}
	if a.lib.node.Now() >= exp {
		delete(a.neg, ip)
		return false
	}
	return true
}

// lookup returns the MAC for ip if cached.
func (a *arpCache) lookup(ip wire.IPAddr) (simnet.MAC, bool) {
	m, ok := a.entries[ip]
	return m, ok
}

// sendOrQueue transmits an IPv4 packet if the destination resolves,
// otherwise queues it and kicks resolution. done (may be nil) is called
// with nil once the packet is on the wire, or with ErrHostUnreachable if
// resolution fails — synchronously on the warm-cache fast path.
func (a *arpCache) sendOrQueue(dstIP wire.IPAddr, proto uint8, transport, payload []byte, ctx uint64, done func(error)) {
	if mac, ok := a.entries[dstIP]; ok {
		a.lib.sendIPv4(mac, dstIP, proto, transport, payload, ctx)
		if done != nil {
			done(nil)
		}
		return
	}
	if a.negative(dstIP) {
		if done != nil {
			done(core.ErrHostUnreachable)
		}
		return
	}
	p, ok := a.pending[dstIP]
	if !ok {
		p = &arpPending{}
		a.pending[dstIP] = p
		a.request(dstIP)
		a.spawnRetrier(dstIP)
	}
	p.sends = append(p.sends, pendingSend{dstIP, proto, transport, payload, ctx, done})
}

// waitResolved registers a coroutine waker to fire when ip resolves; it
// reports whether the address is already resolved. While a negative-cache
// entry is fresh, it neither registers nor re-requests — the caller
// observes no pending resolution and fails fast.
func (a *arpCache) waitResolved(ip wire.IPAddr, w sched.Waker) bool {
	if _, ok := a.entries[ip]; ok {
		return true
	}
	if a.negative(ip) {
		return false
	}
	p, ok := a.pending[ip]
	if !ok {
		p = &arpPending{}
		a.pending[ip] = p
		a.request(ip)
		a.spawnRetrier(ip)
	}
	p.wakers = append(p.wakers, w)
	return false
}

// request broadcasts one ARP request for ip.
func (a *arpCache) request(ip wire.IPAddr) {
	h := wire.ARPHeader{
		Op:       wire.ARPRequest,
		SenderHW: a.lib.port.MAC(),
		SenderIP: a.lib.cfg.IP,
		TargetIP: ip,
	}
	frame := make([]byte, wire.EthHeaderLen+wire.ARPHeaderLen)
	eth := wire.EthHeader{Dst: simnet.Broadcast, Src: a.lib.port.MAC(), EtherType: wire.EtherTypeARP}
	n := eth.Marshal(frame)
	h.Marshal(frame[n:])
	a.lib.txFrame(frame)
}

// spawnRetrier starts a background coroutine re-requesting ip until it
// resolves. After bounded retries it gives up: queued sends fail with
// ErrHostUnreachable, waiters wake to observe the failure, and a
// negative-cache entry suppresses an immediate retry storm.
func (a *arpCache) spawnRetrier(ip wire.IPAddr) {
	const interval = 500 * time.Microsecond
	const maxRetries = 10
	var h sched.Handle
	h = a.lib.sched.Spawn(sched.Background, sched.Func(func(ctx *sched.Context) sched.Poll {
		p, ok := a.pending[ip]
		if !ok {
			return sched.Done // resolved and flushed
		}
		if p.retries >= maxRetries {
			delete(a.pending, ip)
			a.neg[ip] = a.lib.node.Now().Add(negCacheTTL)
			a.lib.stats.ARPGiveUps++
			for _, s := range p.sends {
				if s.done != nil {
					s.done(core.ErrHostUnreachable)
				}
			}
			for _, w := range p.wakers {
				w.Wake() // let waiters observe failure
			}
			return sched.Done
		}
		p.retries++
		a.request(ip)
		a.lib.timerWake(a.lib.node.Now().Add(interval), h)
		return sched.Pending
	}))
}

// handle processes a received ARP packet: learn the sender, answer
// requests for our address, and flush pending traffic.
func (a *arpCache) handle(payload []byte) {
	h, err := wire.ParseARP(payload)
	if err != nil {
		return
	}
	// Learn the sender mapping opportunistically (clearing any stale
	// negative entry: the host is evidently reachable again).
	if !h.SenderIP.IsZero() {
		a.entries[h.SenderIP] = h.SenderHW
		delete(a.neg, h.SenderIP)
		a.flush(h.SenderIP, h.SenderHW)
	}
	if h.Op == wire.ARPRequest && h.TargetIP == a.lib.cfg.IP {
		reply := wire.ARPHeader{
			Op:       wire.ARPReply,
			SenderHW: a.lib.port.MAC(),
			SenderIP: a.lib.cfg.IP,
			TargetHW: h.SenderHW,
			TargetIP: h.SenderIP,
		}
		frame := make([]byte, wire.EthHeaderLen+wire.ARPHeaderLen)
		eth := wire.EthHeader{Dst: h.SenderHW, Src: a.lib.port.MAC(), EtherType: wire.EtherTypeARP}
		n := eth.Marshal(frame)
		reply.Marshal(frame[n:])
		a.lib.txFrame(frame)
	}
}

// flush transmits traffic queued for ip and wakes waiting coroutines.
func (a *arpCache) flush(ip wire.IPAddr, mac simnet.MAC) {
	p, ok := a.pending[ip]
	if !ok {
		return
	}
	delete(a.pending, ip)
	for _, s := range p.sends {
		a.lib.sendIPv4(mac, s.dstIP, s.proto, s.transport, s.payload, s.ctx)
		if s.done != nil {
			s.done(nil)
		}
	}
	for _, w := range p.wakers {
		w.Wake()
	}
}
