package catnip

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"demikernel/internal/core"
	"demikernel/internal/dpdkdev"
	"demikernel/internal/memory"
	"demikernel/internal/sim"
	"demikernel/internal/simnet"
	"demikernel/internal/wire"
)

var (
	ipA = wire.IPAddr{10, 0, 0, 1}
	ipB = wire.IPAddr{10, 0, 0, 2}
)

// pair builds two Catnip nodes on one switch. seedARP pre-populates both
// ARP caches (the common benchmark setup); leave it false to exercise
// resolution.
func pair(t *testing.T, seed uint64, link simnet.LinkParams, seedARP bool) (*sim.Engine, *LibOS, *LibOS) {
	t.Helper()
	eng := sim.NewEngine(seed)
	sw := simnet.NewSwitch(eng, simnet.DefaultSwitch())
	na, nb := eng.NewNode("a"), eng.NewNode("b")
	pa := dpdkdev.Attach(sw, na, link, 8192, 0)
	pb := dpdkdev.Attach(sw, nb, link, 8192, 0)
	la := New(na, pa, DefaultConfig(ipA))
	lb := New(nb, pb, DefaultConfig(ipB))
	if seedARP {
		la.arp.Seed(ipB, pb.MAC())
		lb.arp.Seed(ipA, pa.MAC())
	}
	return eng, la, lb
}

// push is a test helper: wrap p in a DMA buffer and push it.
func push(t *testing.T, l *LibOS, qd core.QDesc, p []byte) core.QToken {
	t.Helper()
	qt, err := l.Push(qd, core.SGA(memory.CopyFrom(l.Heap(), p)))
	if err != nil {
		t.Fatalf("push: %v", err)
	}
	return qt
}

// runServer runs a simple accept-once echo server until the peer closes.
func echoServer(t *testing.T, l *LibOS, port uint16) func() {
	return func() {
		qd, err := l.Socket(core.SockStream)
		if err != nil {
			t.Errorf("socket: %v", err)
			return
		}
		if err := l.Bind(qd, l.Addr(port)); err != nil {
			t.Errorf("bind: %v", err)
			return
		}
		if err := l.Listen(qd, 8); err != nil {
			t.Errorf("listen: %v", err)
			return
		}
		aqt, _ := l.Accept(qd)
		ev, err := l.Wait(aqt)
		if err != nil {
			return
		}
		conn := ev.NewQD
		for {
			pqt, err := l.Pop(conn)
			if err != nil {
				return
			}
			ev, err := l.Wait(pqt)
			if err != nil || ev.Err != nil {
				return
			}
			if len(ev.SGA.Segs) == 0 {
				l.Close(conn) // EOF
				return
			}
			wqt, err := l.Push(conn, ev.SGA)
			if err != nil {
				return
			}
			if _, err := l.Wait(wqt); err != nil {
				return
			}
			ev.SGA.Free()
		}
	}
}

func TestTCPEcho(t *testing.T) {
	eng, la, lb := pair(t, 1, simnet.DefaultLink(), true)
	eng.Spawn(lb.Node(), echoServer(t, lb, 80))
	var got []byte
	eng.Spawn(la.Node(), func() {
		qd, _ := la.Socket(core.SockStream)
		cqt, err := la.Connect(qd, core.Addr{IP: ipB, Port: 80})
		if err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		if ev, err := la.Wait(cqt); err != nil || ev.Err != nil {
			t.Errorf("connect wait: %v %v", err, ev.Err)
			return
		}
		msg := []byte("hello catnip tcp!")
		push(t, la, qd, msg)
		pqt, _ := la.Pop(qd)
		ev, err := la.Wait(pqt)
		if err != nil || ev.Err != nil {
			t.Errorf("pop: %v %v", err, ev.Err)
			return
		}
		got = ev.SGA.Flatten()
		ev.SGA.Free()
		la.Close(qd)
	})
	eng.Run()
	if string(got) != "hello catnip tcp!" {
		t.Fatalf("echo = %q", got)
	}
}

func TestTCPHandshakeWithARPResolution(t *testing.T) {
	// No seeded ARP: connect must resolve the server's MAC first.
	eng, la, lb := pair(t, 2, simnet.DefaultLink(), false)
	eng.Spawn(lb.Node(), echoServer(t, lb, 80))
	connected := false
	eng.Spawn(la.Node(), func() {
		qd, _ := la.Socket(core.SockStream)
		cqt, _ := la.Connect(qd, core.Addr{IP: ipB, Port: 80})
		if ev, err := la.Wait(cqt); err == nil && ev.Err == nil {
			connected = true
		}
		la.Close(qd)
	})
	eng.Run()
	if !connected {
		t.Fatal("connect via ARP resolution failed")
	}
}

func TestTCPConnectRefused(t *testing.T) {
	eng, la, lb := pair(t, 3, simnet.DefaultLink(), true)
	_ = lb
	var connErr error
	eng.Spawn(la.Node(), func() {
		qd, _ := la.Socket(core.SockStream)
		cqt, _ := la.Connect(qd, core.Addr{IP: ipB, Port: 9999})
		ev, err := la.Wait(cqt)
		if err != nil {
			connErr = err
			return
		}
		connErr = ev.Err
	})
	// The server node must still run its libOS to answer with RST; give it
	// an app loop that just parks.
	eng.Spawn(lb.Node(), func() {
		lb.WaitAny(nil, 50*time.Millisecond) // drive the libOS to answer RST
	})
	eng.Run()
	if !errors.Is(connErr, core.ErrConnRefused) {
		t.Fatalf("connect error = %v, want ErrConnRefused", connErr)
	}
}

func TestTCPLargeTransferIntegrity(t *testing.T) {
	const total = 1 << 20 // 1 MiB
	eng, la, lb := pair(t, 4, simnet.DefaultLink(), true)
	var received bytes.Buffer
	eng.Spawn(lb.Node(), func() {
		qd, _ := lb.Socket(core.SockStream)
		lb.Bind(qd, lb.Addr(80))
		lb.Listen(qd, 4)
		aqt, _ := lb.Accept(qd)
		ev, err := lb.Wait(aqt)
		if err != nil {
			return
		}
		conn := ev.NewQD
		for received.Len() < total {
			pqt, _ := lb.Pop(conn)
			ev, err := lb.Wait(pqt)
			if err != nil || ev.Err != nil || len(ev.SGA.Segs) == 0 {
				return
			}
			received.Write(ev.SGA.Flatten())
			ev.SGA.Free()
		}
		lb.Close(conn)
		lb.WaitAny(nil, 100*time.Millisecond) // drain final acks + FIN
	})
	sent := make([]byte, total)
	for i := range sent {
		sent[i] = byte(i * 31)
	}
	eng.Spawn(la.Node(), func() {
		qd, _ := la.Socket(core.SockStream)
		cqt, _ := la.Connect(qd, core.Addr{IP: ipB, Port: 80})
		if _, err := la.Wait(cqt); err != nil {
			return
		}
		// Push in 32 KiB chunks, a few outstanding at a time.
		var qts []core.QToken
		for off := 0; off < total; off += 32 << 10 {
			end := off + 32<<10
			if end > total {
				end = total
			}
			qts = append(qts, push(t, la, qd, sent[off:end]))
		}
		if _, err := la.WaitAll(qts, -1); err != nil {
			t.Errorf("waitall: %v", err)
		}
		la.Close(qd)
	})
	eng.Run()
	if received.Len() != total {
		t.Fatalf("received %d bytes, want %d", received.Len(), total)
	}
	if !bytes.Equal(received.Bytes(), sent) {
		t.Fatal("stream corrupted")
	}
}

func TestTCPTransferUnderLoss(t *testing.T) {
	link := simnet.DefaultLink()
	link.LossProb = 0.02
	const total = 256 << 10
	eng, la, lb := pair(t, 5, link, true)
	var received bytes.Buffer
	eng.Spawn(lb.Node(), func() {
		qd, _ := lb.Socket(core.SockStream)
		lb.Bind(qd, lb.Addr(80))
		lb.Listen(qd, 4)
		aqt, _ := lb.Accept(qd)
		ev, err := lb.Wait(aqt)
		if err != nil {
			return
		}
		conn := ev.NewQD
		for received.Len() < total {
			pqt, _ := lb.Pop(conn)
			ev, err := lb.Wait(pqt)
			if err != nil || ev.Err != nil || len(ev.SGA.Segs) == 0 {
				return
			}
			received.Write(ev.SGA.Flatten())
			ev.SGA.Free()
		}
		lb.Close(conn)
		lb.WaitAny(nil, 500*time.Millisecond) // drain retransmitted tails
	})
	sent := make([]byte, total)
	for i := range sent {
		sent[i] = byte(i * 17)
	}
	eng.Spawn(la.Node(), func() {
		qd, _ := la.Socket(core.SockStream)
		cqt, _ := la.Connect(qd, core.Addr{IP: ipB, Port: 80})
		if ev, err := la.Wait(cqt); err != nil || ev.Err != nil {
			t.Errorf("connect under loss: %v %v", err, ev)
			return
		}
		var qts []core.QToken
		for off := 0; off < total; off += 16 << 10 {
			qts = append(qts, push(t, la, qd, sent[off:off+16<<10]))
		}
		if _, err := la.WaitAll(qts, -1); err != nil {
			t.Errorf("waitall: %v", err)
		}
	})
	eng.Run()
	if !bytes.Equal(received.Bytes(), sent) {
		t.Fatalf("stream corrupted under loss (got %d bytes, want %d)", received.Len(), total)
	}
	if la.Stats().TCPRetransmits+la.Stats().TCPFastRetransmits == 0 {
		t.Error("no retransmissions recorded despite loss")
	}
}

func TestTCPCloseDeliversEOFAndReapsConn(t *testing.T) {
	eng, la, lb := pair(t, 6, simnet.DefaultLink(), true)
	gotEOF := false
	eng.Spawn(lb.Node(), func() {
		qd, _ := lb.Socket(core.SockStream)
		lb.Bind(qd, lb.Addr(80))
		lb.Listen(qd, 4)
		aqt, _ := lb.Accept(qd)
		ev, err := lb.Wait(aqt)
		if err != nil {
			return
		}
		conn := ev.NewQD
		pqt, _ := lb.Pop(conn)
		ev, err = lb.Wait(pqt)
		if err == nil && ev.Err == nil && len(ev.SGA.Segs) == 0 {
			gotEOF = true
		}
		lb.Close(conn)
		lb.WaitAny(nil, 100*time.Millisecond) // receive the final ack of our FIN
	})
	eng.Spawn(la.Node(), func() {
		qd, _ := la.Socket(core.SockStream)
		cqt, _ := la.Connect(qd, core.Addr{IP: ipB, Port: 80})
		if _, err := la.Wait(cqt); err != nil {
			return
		}
		la.Close(qd)
		// Drive the libOS long enough for FIN handshakes + TIME_WAIT.
		la.WaitAny(nil, 100*time.Millisecond)
	})
	eng.Run()
	if !gotEOF {
		t.Fatal("server did not observe EOF on peer close")
	}
	if n := len(la.conns); n != 0 {
		t.Errorf("client still has %d conns after TIME_WAIT", n)
	}
	if n := len(lb.conns); n != 0 {
		t.Errorf("server still has %d conns after close", n)
	}
}

func TestTCPZeroCopyOwnership(t *testing.T) {
	eng, la, lb := pair(t, 7, simnet.DefaultLink(), true)
	eng.Spawn(lb.Node(), echoServer(t, lb, 80))
	eng.Spawn(la.Node(), func() {
		qd, _ := la.Socket(core.SockStream)
		cqt, _ := la.Connect(qd, core.Addr{IP: ipB, Port: 80})
		if _, err := la.Wait(cqt); err != nil {
			return
		}
		// Zero-copy-sized buffer: freed by the app immediately after push
		// (legal under PDPIX); UAF protection must keep it alive until the
		// stack's segments are acked.
		buf := la.Heap().Alloc(2048)
		for i := range buf.Bytes() {
			buf.Bytes()[i] = byte(i)
		}
		pqt, err := la.Push(qd, core.SGA(buf))
		if err != nil {
			t.Errorf("push: %v", err)
			return
		}
		buf.Free() // app reference gone; libOS still holds it
		// TCP is a byte stream: the echo may arrive across several pops.
		echoed := 0
		for echoed < 2048 {
			popt, _ := la.Pop(qd)
			ev, err := la.Wait(popt)
			if err != nil || ev.Err != nil {
				t.Errorf("pop: %v", err)
				return
			}
			echoed += ev.SGA.TotalLen()
			ev.SGA.Free()
		}
		if echoed != 2048 {
			t.Errorf("echoed %d bytes, want 2048", echoed)
		}
		if _, err := la.Wait(pqt); err != nil {
			t.Errorf("push wait: %v", err)
		}
		la.Close(qd)
		la.WaitAny(nil, 100*time.Millisecond) // drain TIME_WAIT
	})
	eng.Run()
	if live := la.Heap().LiveObjects(); live != 0 {
		t.Errorf("client heap has %d live objects after close", live)
	}
	if la.Stats().ZeroCopyTx == 0 {
		t.Error("zero-copy path not taken for 2 KiB buffer")
	}
}

func TestTCPReceiverBackpressure(t *testing.T) {
	// Push far more than the receive buffer while the server sleeps; flow
	// control must stall the sender, then drain once the server pops.
	const total = 1 << 20
	eng, la, lb := pair(t, 8, simnet.DefaultLink(), true)
	received := 0
	eng.Spawn(lb.Node(), func() {
		qd, _ := lb.Socket(core.SockStream)
		lb.Bind(qd, lb.Addr(80))
		lb.Listen(qd, 4)
		aqt, _ := lb.Accept(qd)
		ev, err := lb.Wait(aqt)
		if err != nil {
			return
		}
		conn := ev.NewQD
		// Sleep (virtual) 5 ms before reading anything.
		lb.Node().Park(lb.Node().Now().Add(5 * time.Millisecond))
		for received < total {
			pqt, _ := lb.Pop(conn)
			ev, err := lb.Wait(pqt)
			if err != nil || ev.Err != nil || len(ev.SGA.Segs) == 0 {
				return
			}
			received += ev.SGA.TotalLen()
			ev.SGA.Free()
		}
		lb.Close(conn)
		lb.WaitAny(nil, 100*time.Millisecond)
	})
	eng.Spawn(la.Node(), func() {
		qd, _ := la.Socket(core.SockStream)
		cqt, _ := la.Connect(qd, core.Addr{IP: ipB, Port: 80})
		if _, err := la.Wait(cqt); err != nil {
			return
		}
		data := make([]byte, total)
		qt := push(t, la, qd, data)
		if _, err := la.Wait(qt); err != nil {
			t.Errorf("push wait: %v", err)
		}
	})
	eng.Run()
	if received != total {
		t.Fatalf("received %d, want %d", received, total)
	}
}

func TestUDPEchoWithFromAddr(t *testing.T) {
	eng, la, lb := pair(t, 9, simnet.DefaultLink(), true)
	eng.Spawn(lb.Node(), func() {
		qd, _ := lb.Socket(core.SockDgram)
		lb.Bind(qd, lb.Addr(53))
		for {
			pqt, _ := lb.Pop(qd)
			ev, err := lb.Wait(pqt)
			if err != nil {
				return
			}
			// Reply to the sender (the relay pattern).
			if _, err := lb.PushTo(qd, ev.SGA, ev.From); err != nil {
				return
			}
		}
	})
	var reply []byte
	var from core.Addr
	eng.Spawn(la.Node(), func() {
		qd, _ := la.Socket(core.SockDgram)
		qt, _ := la.PushTo(qd, core.SGA(memory.CopyFrom(la.Heap(), []byte("ping"))), core.Addr{IP: ipB, Port: 53})
		la.Wait(qt)
		pqt, _ := la.Pop(qd)
		ev, err := la.Wait(pqt)
		if err != nil {
			return
		}
		reply = ev.SGA.Flatten()
		from = ev.From
	})
	eng.Run()
	if string(reply) != "ping" {
		t.Fatalf("reply = %q", reply)
	}
	if from.IP != ipB || from.Port != 53 {
		t.Errorf("from = %v", from)
	}
}

func TestUDPToClosedPortIsDropped(t *testing.T) {
	eng, la, lb := pair(t, 10, simnet.DefaultLink(), true)
	eng.Spawn(la.Node(), func() {
		qd, _ := la.Socket(core.SockDgram)
		qt, _ := la.PushTo(qd, core.SGA(memory.CopyFrom(la.Heap(), []byte("x"))), core.Addr{IP: ipB, Port: 1234})
		la.Wait(qt)
	})
	eng.Spawn(lb.Node(), func() {
		// Run the libOS a little so the frame is consumed.
		lb.WaitAny(nil, 10*time.Millisecond)
	})
	eng.Run()
	if lb.Stats().RxDroppedNoPort != 1 {
		t.Errorf("RxDroppedNoPort = %d, want 1", lb.Stats().RxDroppedNoPort)
	}
}

func TestMemQueue(t *testing.T) {
	eng, la, _ := pair(t, 11, simnet.DefaultLink(), true)
	var got []byte
	eng.Spawn(la.Node(), func() {
		qd, err := la.Queue()
		if err != nil {
			t.Errorf("queue: %v", err)
			return
		}
		qt, _ := la.Push(qd, core.SGA(memory.CopyFrom(la.Heap(), []byte("via memqueue"))))
		la.Wait(qt)
		pqt, _ := la.Pop(qd)
		ev, err := la.Wait(pqt)
		if err != nil {
			return
		}
		got = ev.SGA.Flatten()
	})
	eng.Run()
	if string(got) != "via memqueue" {
		t.Fatalf("got %q", got)
	}
}

func TestWaitAnyAcrossConnections(t *testing.T) {
	eng, la, lb := pair(t, 12, simnet.DefaultLink(), true)
	// Server echoes on two connections.
	eng.Spawn(lb.Node(), func() {
		qd, _ := lb.Socket(core.SockStream)
		lb.Bind(qd, lb.Addr(80))
		lb.Listen(qd, 4)
		var conns []core.QDesc
		for len(conns) < 2 {
			aqt, _ := lb.Accept(qd)
			ev, err := lb.Wait(aqt)
			if err != nil {
				return
			}
			conns = append(conns, ev.NewQD)
		}
		// Pop from both; echo whatever arrives, twice.
		qts := make([]core.QToken, 2)
		qts[0], _ = lb.Pop(conns[0])
		qts[1], _ = lb.Pop(conns[1])
		for n := 0; n < 2; n++ {
			i, ev, err := lb.WaitAny(qts, -1)
			if err != nil || ev.Err != nil {
				return
			}
			lb.Push(conns[i], ev.SGA)
			qts[i], _ = lb.Pop(conns[i])
		}
		lb.WaitAny(nil, 50*time.Millisecond)
	})
	replies := make([]string, 2)
	eng.Spawn(la.Node(), func() {
		var qds []core.QDesc
		for i := 0; i < 2; i++ {
			qd, _ := la.Socket(core.SockStream)
			cqt, _ := la.Connect(qd, core.Addr{IP: ipB, Port: 80})
			if _, err := la.Wait(cqt); err != nil {
				return
			}
			qds = append(qds, qd)
		}
		push(t, la, qds[0], []byte("conn0"))
		push(t, la, qds[1], []byte("conn1"))
		for i, qd := range qds {
			pqt, _ := la.Pop(qd)
			ev, err := la.Wait(pqt)
			if err != nil || ev.Err != nil {
				return
			}
			replies[i] = string(ev.SGA.Flatten())
		}
	})
	eng.Run()
	if replies[0] != "conn0" || replies[1] != "conn1" {
		t.Fatalf("replies = %v", replies)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (sim.Time, uint64) {
		eng, la, lb := pair(t, 99, simnet.DefaultLink(), true)
		eng.Spawn(lb.Node(), echoServer(t, lb, 80))
		eng.Spawn(la.Node(), func() {
			qd, _ := la.Socket(core.SockStream)
			cqt, _ := la.Connect(qd, core.Addr{IP: ipB, Port: 80})
			if _, err := la.Wait(cqt); err != nil {
				return
			}
			for i := 0; i < 50; i++ {
				push(t, la, qd, bytes.Repeat([]byte{byte(i)}, 64))
				pqt, _ := la.Pop(qd)
				ev, err := la.Wait(pqt)
				if err != nil || ev.Err != nil {
					return
				}
				ev.SGA.Free()
			}
			la.Close(qd)
		})
		eng.Run()
		return eng.Now(), eng.EventsRun()
	}
	t1, e1 := run()
	t2, e2 := run()
	if t1 != t2 || e1 != e2 {
		t.Fatalf("nondeterministic: (%v,%d) vs (%v,%d)", t1, e1, t2, e2)
	}
}
