package catnip

import (
	"time"

	"demikernel/internal/core"
	"demikernel/internal/costmodel"
	"demikernel/internal/memory"
	"demikernel/internal/sched"
	"demikernel/internal/wire"
)

// Sequence-space comparisons (RFC 793 modular arithmetic).
func seqLT(a, b uint32) bool { return int32(a-b) < 0 }
func seqLE(a, b uint32) bool { return int32(a-b) <= 0 }
func seqGT(a, b uint32) bool { return int32(a-b) > 0 }
func seqGE(a, b uint32) bool { return int32(a-b) >= 0 }

// rcvWndScaleShift is the window scale we advertise (x128).
const rcvWndScaleShift = 7

// maxSegsPerPop bounds the segments returned by one pop completion.
const maxSegsPerPop = 16

// newTCPConn builds a connection in stateClosed with sequence state
// initialized; callers set the state and fire the handshake. tenant is
// the owning principal (active opens: the socket's; passive opens: the
// listener's) — rx allocations are charged to it and its coroutines are
// scheduled under its WFQ index.
func newTCPConn(l *LibOS, qd core.QDesc, tuple fourTuple, tenant uint32, tidx uint8) *tcpConn {
	c := &tcpConn{
		lib:    l,
		qd:     qd,
		tuple:  tuple,
		mss:    l.cfg.MSS,
		iss:    uint32(l.rng.Uint64()),
		tenant: tenant,
		tidx:   tidx,
		theap:  l.tenantHeapFor(tenant),
	}
	c.sndUna = c.iss
	c.sndNxt = c.iss + 1 // SYN consumes one sequence number
	c.queuedSeq = c.iss + 1
	c.rto = newRTOEstimator(l.cfg.RTOInit, l.cfg.RTOMin, l.cfg.RTOMax)
	c.cc.init(c.mss)
	c.spawnCoroutines()
	return c
}

// nowTS returns the RFC 7323 timestamp value: microseconds of virtual time.
func (c *tcpConn) nowTS() uint32 {
	return uint32(time.Duration(c.lib.node.Now()) / time.Microsecond)
}

// advertisedWnd returns our receive window in bytes.
func (c *tcpConn) advertisedWnd() int {
	w := c.lib.cfg.RecvBufSize - c.recvBytes - c.oooBytes
	if w < 0 {
		w = 0
	}
	return w
}

// wireWindow encodes the advertised window for the header (unscaled in SYN
// segments, per RFC 7323).
func (c *tcpConn) wireWindow(syn bool) uint16 {
	w := c.advertisedWnd()
	if !syn {
		w >>= rcvWndScaleShift
	}
	if w > 0xffff {
		w = 0xffff
	}
	return uint16(w)
}

// usableWindow returns how many new payload bytes flow control and
// congestion control allow right now.
func (c *tcpConn) usableWindow() int {
	wnd := c.sndWnd
	if cw := c.cc.window(); cw < wnd {
		wnd = cw
	}
	inFlight := int(c.sndNxt - c.sndUna)
	return wnd - inFlight
}

// startConnect fires the active-open handshake, resolving ARP first if
// needed (a background coroutine waits on the cache; paper §6.3: the fast
// path assumes a warm ARP cache, the slow path spawns a send coroutine).
func (c *tcpConn) startConnect() {
	if mac, ok := c.lib.arp.lookup(c.tuple.remoteIP); ok {
		c.remoteMAC = mac
		c.macKnown = true
		c.sendSyn()
		return
	}
	c.lib.sched.SpawnTenant(sched.Background, c.tidx, sched.Func(func(ctx *sched.Context) sched.Poll {
		if mac, ok := c.lib.arp.lookup(c.tuple.remoteIP); ok {
			c.remoteMAC = mac
			c.macKnown = true
			c.sendSyn()
			return sched.Done
		}
		if !c.lib.arp.waitResolved(c.tuple.remoteIP, ctx.Waker()) {
			if !c.lib.arp.hasPending(c.tuple.remoteIP) {
				// Resolution gave up: the host is unreachable.
				c.abort(core.ErrHostUnreachable)
				return sched.Done
			}
			return sched.Pending
		}
		// Resolved between the lookup and registration; loop via yield.
		return sched.Yield
	}))
}

// sendSyn transmits the initial SYN and arms retransmission.
func (c *tcpConn) sendSyn() {
	seg := segment{seq: c.iss, syn: true}
	c.retransQ = append(c.retransQ, seg)
	c.transmit(&c.retransQ[len(c.retransQ)-1])
}

// spawnCoroutines starts the connection's four background coroutines
// (paper §6.3): sender, retransmitter, pure-ack sender, close manager.
func (c *tcpConn) spawnCoroutines() {
	c.senderH = c.lib.sched.SpawnTenant(sched.Background, c.tidx, sched.Func(c.pollSender))
	c.retransH = c.lib.sched.SpawnTenant(sched.Background, c.tidx, sched.Func(c.pollRetransmit))
	c.ackH = c.lib.sched.SpawnTenant(sched.Background, c.tidx, sched.Func(c.pollAck))
	c.closerH = c.lib.sched.SpawnTenant(sched.Background, c.tidx, sched.Func(c.pollCloser))
}

// --- Application-facing operations ---

// push queues sga for transmission and attempts to send inline (paper
// Figure 4 step 8: egress is inlined in push on the error-free path). The
// op completes when every byte is acknowledged.
func (c *tcpConn) push(op *core.Op, sga core.SGArray) {
	if c.err != nil {
		op.Fail(c.qd, core.OpPush, c.err)
		return
	}
	if c.appClosed || (c.state != stateEstablished && c.state != stateCloseWait && c.state != stateSynSent && c.state != stateSynRcvd) {
		op.Fail(c.qd, core.OpPush, core.ErrQueueClosed)
		return
	}
	total := 0
	for _, b := range sga.Segs {
		b.IORef() // queue-presence reference until fully segmented
		c.sendQ = append(c.sendQ, sendItem{buf: b})
		total += b.Len()
	}
	c.queuedSeq += uint32(total)
	c.pushOps = append(c.pushOps, pushOp{endSeq: c.queuedSeq, op: op})
	c.trySend()
}

// pop asks for the next inbound data.
func (c *tcpConn) pop(op *core.Op) {
	if len(c.recvQ) > 0 {
		c.completePop(op)
		return
	}
	if c.peerClosed {
		op.Complete(core.QEvent{QD: c.qd, Op: core.OpPop}) // empty SGA = EOF
		return
	}
	if c.err != nil {
		op.Fail(c.qd, core.OpPop, c.err)
		return
	}
	c.pops = append(c.pops, op)
}

// completePop hands up to maxSegsPerPop queued buffers to op and sends a
// window update if the receive window had collapsed.
func (c *tcpConn) completePop(op *core.Op) {
	wasSmall := c.advertisedWnd() < c.mss
	n := len(c.recvQ)
	if n > maxSegsPerPop {
		n = maxSegsPerPop
	}
	segs := make([]*memory.Buf, n)
	copy(segs, c.recvQ[:n])
	c.recvQ = c.recvQ[n:]
	for _, b := range segs {
		c.recvBytes -= b.Len()
	}
	if wasSmall && c.advertisedWnd() >= c.mss {
		c.ackPending = true
		c.ackH.Wake()
	}
	op.Complete(core.QEvent{QD: c.qd, Op: core.OpPop, SGA: core.SGArray{Segs: segs},
		From: core.Addr{IP: c.tuple.remoteIP, Port: c.tuple.remotePort}})
}

// completePops drains waiting pops against queued data (and EOF).
func (c *tcpConn) completePops() {
	for len(c.pops) > 0 {
		if len(c.recvQ) > 0 {
			op := c.pops[0]
			c.pops = c.pops[1:]
			c.completePop(op)
			continue
		}
		if c.peerClosed {
			op := c.pops[0]
			c.pops = c.pops[1:]
			op.Complete(core.QEvent{QD: c.qd, Op: core.OpPop})
			continue
		}
		break
	}
}

// appClose initiates a local close: a FIN is queued after pending data.
func (c *tcpConn) appClose() {
	if c.appClosed || c.err != nil {
		return
	}
	c.appClosed = true
	switch c.state {
	case stateSynSent:
		c.abort(core.ErrQueueClosed)
		return
	case stateEstablished, stateSynRcvd, stateCloseWait:
		c.finQueued = true
		c.trySend()
	}
}

// --- Transmission ---

// armPersist schedules a zero-window probe.
func (c *tcpConn) armPersist() {
	d := c.rto.value()
	if d < 5*time.Millisecond {
		d = 5 * time.Millisecond
	}
	c.persistDeadline = c.lib.node.Now().Add(d)
	c.persistArmed = true
	c.lib.timerWake(c.persistDeadline, c.retransH)
}

// sendProbe transmits one byte beyond the advertised window (the window
// probe); it enters the retransmission queue like any segment.
func (c *tcpConn) sendProbe() {
	it := &c.sendQ[0]
	it.buf.IORef()
	seg := segment{seq: c.sndNxt, length: 1, buf: it.buf, off: it.off}
	c.sndNxt++
	it.off++
	if it.off == it.buf.Len() {
		it.buf.IOUnref()
		c.sendQ = c.sendQ[1:]
	}
	c.retransQ = append(c.retransQ, seg)
	c.transmit(&c.retransQ[len(c.retransQ)-1])
	c.lib.stats.WindowProbes++
}

// trySend segments queued data into the usable window and transmits it.
func (c *tcpConn) trySend() {
	if !c.macKnown || c.err != nil {
		return
	}
	if c.state != stateEstablished && c.state != stateCloseWait {
		return
	}
	for len(c.sendQ) > 0 {
		wnd := c.usableWindow()
		if wnd <= 0 {
			break
		}
		it := &c.sendQ[0]
		n := it.buf.Len() - it.off
		if n > c.mss {
			n = c.mss
		}
		if n > wnd {
			n = wnd
		}
		if n <= 0 {
			break
		}
		it.buf.IORef() // segment's reference, held until acked
		seg := segment{seq: c.sndNxt, length: n, buf: it.buf, off: it.off}
		if !it.buf.ZeroCopyEligible() || c.lib.cfg.ForceCopy {
			c.lib.node.Charge(costmodel.Memcpy(n))
			c.lib.stats.CopiedTx++
		} else {
			c.lib.stats.ZeroCopyTx++
		}
		c.sndNxt += uint32(n)
		it.off += n
		if it.off == it.buf.Len() {
			it.buf.IOUnref() // release the queue-presence reference
			c.sendQ = c.sendQ[1:]
		}
		c.retransQ = append(c.retransQ, seg)
		c.transmit(&c.retransQ[len(c.retransQ)-1])
	}
	// Zero send window with data pending and nothing in flight: arm the
	// persist timer so a lost window update cannot deadlock the
	// connection (RFC 1122 4.2.2.17).
	if len(c.sendQ) > 0 && len(c.retransQ) == 0 && c.usableWindow() <= 0 {
		c.armPersist()
	}
	// All data segmented: send the queued FIN.
	if len(c.sendQ) == 0 && c.finQueued && c.sndNxt == c.queuedSeq {
		seg := segment{seq: c.sndNxt, fin: true}
		c.sndNxt++
		c.queuedSeq++
		c.retransQ = append(c.retransQ, seg)
		c.transmit(&c.retransQ[len(c.retransQ)-1])
		c.finQueued = false
		if c.state == stateCloseWait {
			c.state = stateLastAck
		} else {
			c.state = stateFinWait1
		}
	}
}

// transmit builds and sends one segment, arming the RTO.
func (c *tcpConn) transmit(seg *segment) {
	flags := uint8(0)
	var opt wire.TCPOptions
	if seg.syn {
		flags |= wire.TCPSyn
		opt.MSS = uint16(c.lib.cfg.MSS)
		opt.WScale = rcvWndScaleShift
		opt.HasWScale = true
		if c.state == stateSynRcvd {
			flags |= wire.TCPAck
		}
	} else {
		flags |= wire.TCPAck
	}
	if seg.fin {
		flags |= wire.TCPFin
	}
	if seg.length > 0 {
		flags |= wire.TCPPsh
	}
	opt.HasTimestamp = true
	opt.TSVal = c.nowTS()
	opt.TSEcr = c.tsRecent
	h := wire.TCPHeader{
		SrcPort: c.tuple.localPort,
		DstPort: c.tuple.remotePort,
		Seq:     seg.seq,
		Ack:     c.rcvNxt,
		Flags:   flags,
		Window:  c.wireWindow(seg.syn),
		Opt:     opt,
	}
	var payload []byte
	var ctx uint64
	if seg.buf != nil {
		payload = seg.buf.Bytes()[seg.off : seg.off+seg.length]
		ctx = seg.buf.TraceCtx() // the pushed buffer's trace context rides the segment
	}
	hdr := make([]byte, h.MarshalLen())
	h.Marshal(hdr, c.lib.cfg.IP, c.tuple.remoteIP, payload)
	c.lib.node.Charge(c.lib.cfg.TCPEgressCost)
	c.lib.sendIPv4(c.remoteMAC, c.tuple.remoteIP, wire.ProtoTCP, hdr, payload, ctx)
	seg.sentAt = c.lib.node.Now()
	c.ackPending = false // data segments carry the ack
	c.segsSinceAck = 0
	c.ackArmed = false
	c.armRTO()
}

// sendPureAck transmits an empty ACK (window updates, delayed acks,
// duplicate acks).
func (c *tcpConn) sendPureAck() {
	h := wire.TCPHeader{
		SrcPort: c.tuple.localPort,
		DstPort: c.tuple.remotePort,
		Seq:     c.sndNxt,
		Ack:     c.rcvNxt,
		Flags:   wire.TCPAck,
		Window:  c.wireWindow(false),
		Opt:     wire.TCPOptions{HasTimestamp: true, TSVal: c.nowTS(), TSEcr: c.tsRecent},
	}
	hdr := make([]byte, h.MarshalLen())
	h.Marshal(hdr, c.lib.cfg.IP, c.tuple.remoteIP, nil)
	c.lib.node.Charge(c.lib.cfg.TCPEgressCost)
	c.lib.sendIPv4(c.remoteMAC, c.tuple.remoteIP, wire.ProtoTCP, hdr, nil, 0)
	c.lib.stats.PureAcks++
	c.ackPending = false
	c.segsSinceAck = 0
	c.ackArmed = false
}

// armRTO (re)arms the retransmission timer for the oldest in-flight
// segment.
func (c *tcpConn) armRTO() {
	if len(c.retransQ) == 0 {
		c.rtoArmed = false
		return
	}
	c.rtoDeadline = c.lib.node.Now().Add(c.rto.value())
	if !c.rtoArmed {
		c.rtoArmed = true
	}
	c.lib.timerWake(c.rtoDeadline, c.retransH)
}

// fastRetransmit resends the oldest unacked segment after three duplicate
// acks and halves the congestion window (NewReno-style recovery around the
// Cubic window).
func (c *tcpConn) fastRetransmit() {
	if len(c.retransQ) == 0 {
		return
	}
	c.lib.stats.TCPFastRetransmits++
	c.inRecovery = true
	c.recoverSeq = c.sndNxt
	c.cc.onLoss()
	seg := &c.retransQ[0]
	seg.rtx = true
	c.transmit(seg)
	c.rto.backoff()
}
