package catnip

import (
	"testing"

	"demikernel/internal/core"
	"demikernel/internal/dpdkdev"
	"demikernel/internal/memory"
	"demikernel/internal/sim"
	"demikernel/internal/simnet"
	"demikernel/internal/wire"
)

// BenchmarkCatnipIngress measures the real (wall-clock) cost of processing
// one in-order TCP segment and dispatching it to a waiting pop — the
// paper's §6.3 claim: "Catnip can process an incoming TCP packet and
// dispatch it to the waiting application coroutine in 53ns". This is the
// honest Go-equivalent of that number.
func BenchmarkCatnipIngress(b *testing.B) {
	eng := sim.NewEngine(1)
	sw := simnet.NewSwitch(eng, simnet.DefaultSwitch())
	node := eng.NewNode("bench")
	port := dpdkdev.Attach(sw, node, simnet.DefaultLink(), 1024, 0)
	l := New(node, port, DefaultConfig(wire.IPAddr{10, 0, 0, 1}))

	// Hand-build an established connection.
	tuple := fourTuple{localPort: 80, remoteIP: wire.IPAddr{10, 0, 0, 2}, remotePort: 9999}
	c := newTCPConn(l, 1, tuple, 0, 0)
	c.state = stateEstablished
	c.macKnown = true
	c.remoteMAC = simnet.MAC{2, 2, 2, 2, 2, 2}
	c.rcvNxt = 1000
	l.conns[tuple] = c

	// Pre-encode an in-order data segment (seq updated per iteration).
	payload := make([]byte, 64)
	mkSegment := func(seq uint32) []byte {
		h := wire.TCPHeader{
			SrcPort: 9999, DstPort: 80,
			Seq: seq, Ack: c.sndNxt, Flags: wire.TCPAck | wire.TCPPsh,
			Window: 0xffff,
		}
		buf := make([]byte, h.MarshalLen()+len(payload))
		n := h.Marshal(buf, tuple.remoteIP, l.cfg.IP, payload)
		copy(buf[n:], payload)
		return buf
	}
	eth := wire.EthHeader{Src: c.remoteMAC, Dst: port.MAC(), EtherType: wire.EtherTypeIPv4}
	ip := wire.IPv4Header{Proto: wire.ProtoTCP, Src: tuple.remoteIP, Dst: l.cfg.IP, TTL: 64}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seg := mkSegment(c.rcvNxt)
		op := l.tokens.New()
		c.pop(op) // a waiting application coroutine
		b.StartTimer()
		l.handleTCP(eth, ip, seg)
		b.StopTimer()
		if !op.Done() {
			b.Fatal("segment did not complete the pop")
		}
		ev, _, _ := l.tokens.TryTake(op.Token())
		ev.SGA.Free()
		c.ackPending = false
	}
}

// BenchmarkCatnipEgress measures building and transmitting one segment.
func BenchmarkCatnipEgress(b *testing.B) {
	eng := sim.NewEngine(1)
	sw := simnet.NewSwitch(eng, simnet.DefaultSwitch())
	node := eng.NewNode("bench")
	port := dpdkdev.Attach(sw, node, simnet.DefaultLink(), 1024, 0)
	l := New(node, port, DefaultConfig(wire.IPAddr{10, 0, 0, 1}))
	tuple := fourTuple{localPort: 80, remoteIP: wire.IPAddr{10, 0, 0, 2}, remotePort: 9999}
	c := newTCPConn(l, 1, tuple, 0, 0)
	c.state = stateEstablished
	c.macKnown = true
	c.remoteMAC = simnet.MAC{2, 2, 2, 2, 2, 2}
	c.sndWnd = 1 << 30
	c.cc.init(c.mss)
	l.conns[tuple] = c

	buf := memory.CopyFrom(l.heap, make([]byte, 64))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op := l.tokens.New()
		c.push(op, core.SGA(buf))
		// Instantly ack so state does not grow.
		c.sndUna = c.sndNxt
		c.dropAckedSegments()
		c.completePushOps()
		l.tokens.TryTake(op.Token())
	}
}
