package catnip

import "time"

// rtoEstimator computes the retransmission timeout per RFC 6298, with
// datacenter-tuned clamps from the stack configuration.
type rtoEstimator struct {
	srtt, rttvar   time.Duration
	rtoVal         time.Duration
	min, max, init time.Duration
	haveSample     bool
	backoffs       int
}

func newRTOEstimator(init, min, max time.Duration) rtoEstimator {
	return rtoEstimator{rtoVal: init, min: min, max: max, init: init}
}

// sample folds one RTT measurement into the estimator.
func (r *rtoEstimator) sample(rtt time.Duration) {
	if rtt < 0 {
		return
	}
	if !r.haveSample {
		r.haveSample = true
		r.srtt = rtt
		r.rttvar = rtt / 2
	} else {
		d := r.srtt - rtt
		if d < 0 {
			d = -d
		}
		r.rttvar = (3*r.rttvar + d) / 4
		r.srtt = (7*r.srtt + rtt) / 8
	}
	r.rtoVal = r.srtt + 4*r.rttvar
	r.clamp()
	r.backoffs = 0
}

// value returns the current RTO.
func (r *rtoEstimator) value() time.Duration { return r.rtoVal }

// srttValue returns the smoothed RTT (zero before the first sample).
func (r *rtoEstimator) srttValue() time.Duration { return r.srtt }

// backoff doubles the RTO after a timeout (Karn's algorithm).
func (r *rtoEstimator) backoff() {
	r.rtoVal *= 2
	r.clamp()
	r.backoffs++
}

// exhausted reports whether retransmission should give up.
func (r *rtoEstimator) exhausted() bool { return r.backoffs > 8 }

func (r *rtoEstimator) clamp() {
	if r.rtoVal < r.min {
		r.rtoVal = r.min
	}
	if r.rtoVal > r.max {
		r.rtoVal = r.max
	}
}
