package catnip

import (
	"demikernel/internal/core"
	"demikernel/internal/costmodel"
	"demikernel/internal/memory"
	"demikernel/internal/wire"
)

// maxUDPPayload is the largest datagram the stack accepts (UDP length field
// minus headers). The simulated fabric carries jumbo frames, so datagrams
// are not IP-fragmented; see DESIGN.md.
const maxUDPPayload = 65507

// datagram is one received UDP payload with its source.
type datagram struct {
	from core.Addr
	buf  *memory.Buf
}

// udpSocket is a PDPIX datagram queue.
type udpSocket struct {
	lib       *LibOS
	qd        core.QDesc
	localPort uint16
	bound     bool
	remote    core.Addr // default destination set by Connect
	recvQ     []datagram
	pops      []*core.Op
	closed    bool
	// tenant owns the socket; theap (nil for the host) charges its rx
	// allocations.
	tenant uint32
	theap  *memory.TenantHeap
}

func (s *udpSocket) bind(addr core.Addr) error {
	if s.bound {
		return core.ErrInUse
	}
	if !addr.IP.IsZero() && addr.IP != s.lib.cfg.IP {
		return core.ErrNotBound
	}
	if _, used := s.lib.udpPorts[addr.Port]; used {
		return core.ErrInUse
	}
	s.localPort = addr.Port
	s.bound = true
	s.lib.udpPorts[addr.Port] = s
	return nil
}

// ensureBound lazily binds to an ephemeral port on first send.
func (s *udpSocket) ensureBound() error {
	if !s.bound {
		p, err := s.lib.allocEphemeral()
		if err != nil {
			return err
		}
		s.localPort = p
		s.bound = true
		s.lib.udpPorts[s.localPort] = s
	}
	return nil
}

// push transmits one datagram built from sga to the explicit address, or
// the connected default. The datagram goes on the wire inline (fast path);
// the op completes immediately and buffer ownership returns to the app.
func (s *udpSocket) push(op *core.Op, sga core.SGArray, to core.Addr) {
	if s.closed {
		op.Fail(s.qd, core.OpPush, core.ErrQueueClosed)
		return
	}
	dst := to
	if dst.IP.IsZero() {
		dst = s.remote
	}
	if dst.IP.IsZero() {
		op.Fail(s.qd, core.OpPush, core.ErrNotBound)
		return
	}
	n := sga.TotalLen()
	if n > maxUDPPayload {
		op.Fail(s.qd, core.OpPush, core.ErrNotSupported)
		return
	}
	if err := s.ensureBound(); err != nil {
		op.Fail(s.qd, core.OpPush, err)
		return
	}
	s.lib.node.Charge(s.lib.cfg.UDPEgressCost)
	// Gather segments. Zero-copy eligible buffers are "DMA-gathered" (no
	// CPU charge); small ones are copied (charged), mirroring the 1 KiB
	// zero-copy policy.
	payload := make([]byte, 0, n)
	for _, b := range sga.Segs {
		if !b.ZeroCopyEligible() || s.lib.cfg.ForceCopy {
			s.lib.node.Charge(costmodel.Memcpy(b.Len()))
			s.lib.stats.CopiedTx++
		} else {
			s.lib.stats.ZeroCopyTx++
		}
		payload = append(payload, b.Bytes()...)
	}
	h := wire.UDPHeader{SrcPort: s.localPort, DstPort: dst.Port, Length: uint16(wire.UDPHeaderLen + n)}
	hdr := make([]byte, wire.UDPHeaderLen)
	h.Marshal(hdr, s.lib.cfg.IP, dst.IP, payload)
	// Completion is deferred to the ARP layer: on the warm-cache fast path
	// the callback runs synchronously (identical behavior), and when
	// bounded-retry resolution gives up, the push fails with
	// ErrHostUnreachable instead of silently dropping the datagram.
	s.lib.arp.sendOrQueue(dst.IP, wire.ProtoUDP, hdr, payload, sga.TraceCtx(), func(err error) {
		if err != nil {
			op.Fail(s.qd, core.OpPush, err)
			return
		}
		op.Complete(core.QEvent{QD: s.qd, Op: core.OpPush})
	})
}

// pop returns the next datagram, completing immediately if one is queued.
func (s *udpSocket) pop(op *core.Op) {
	if len(s.recvQ) > 0 {
		d := s.recvQ[0]
		s.recvQ = s.recvQ[1:]
		op.Complete(core.QEvent{QD: s.qd, Op: core.OpPop, SGA: core.SGA(d.buf), From: d.from})
		return
	}
	if s.closed {
		op.Fail(s.qd, core.OpPop, core.ErrQueueClosed)
		return
	}
	s.pops = append(s.pops, op)
}

// deliver hands a received datagram to a waiting pop or queues it.
func (s *udpSocket) deliver(from core.Addr, buf *memory.Buf) {
	if len(s.pops) > 0 {
		op := s.pops[0]
		s.pops = s.pops[1:]
		op.Complete(core.QEvent{QD: s.qd, Op: core.OpPop, SGA: core.SGA(buf), From: from})
		return
	}
	s.recvQ = append(s.recvQ, datagram{from: from, buf: buf})
}

func (s *udpSocket) close() {
	s.closed = true
	if s.bound {
		delete(s.lib.udpPorts, s.localPort)
	}
	for _, op := range s.pops {
		op.Fail(s.qd, core.OpPop, core.ErrQueueClosed)
	}
	s.pops = nil
	for _, d := range s.recvQ {
		d.buf.Free()
	}
	s.recvQ = nil
}

// handleUDP dispatches a received UDP packet to its socket.
func (l *LibOS) handleUDP(ip wire.IPv4Header, body []byte) {
	h, payload, err := wire.ParseUDP(body, ip.Src, ip.Dst)
	if err != nil {
		l.stats.RxBadChecksum++
		if wire.IsChecksumError(err) {
			l.stats.RxChecksumDrops++
		}
		return
	}
	s, ok := l.udpPorts[h.DstPort]
	if !ok {
		l.stats.RxDroppedNoPort++
		return
	}
	// The NIC DMA-writes into the DMA-capable heap: no CPU copy charged.
	// With the heap exhausted the datagram is dropped (UDP is lossy; the
	// application's retry recovers) rather than panicking the stack.
	buf, err := s.copyIn(payload) // charged to the socket's tenant
	if err != nil {
		l.stats.RxAllocDrops++
		return
	}
	buf.SetTraceCtx(l.rxCtx) // the frame's trace context follows its data to the app
	s.deliver(core.Addr{IP: ip.Src, Port: h.SrcPort}, buf)
}
