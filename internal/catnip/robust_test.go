package catnip

// Regression tests for graceful degradation: resource exhaustion and
// unreachable peers must surface as PDPIX errors, never as panics or hangs.

import (
	"errors"
	"testing"
	"time"

	"demikernel/internal/core"
	"demikernel/internal/dpdkdev"
	"demikernel/internal/faults"
	"demikernel/internal/memory"
	"demikernel/internal/simnet"
	"demikernel/internal/wire"
)

// TestEphemeralPortExhaustion: with the whole ephemeral port space consumed,
// Connect returns ErrAddrNotAvail (EADDRNOTAVAIL) instead of panicking, and
// mints no qtoken (nothing leaks into the token table).
func TestEphemeralPortExhaustion(t *testing.T) {
	eng, la, _ := pair(t, 11, simnet.DefaultLink(), true)
	eng.Spawn(la.Node(), func() {
		// Occupy every port so allocEphemeral has nothing to hand out.
		dummy := &udpSocket{lib: la}
		for p := 0; p < 65536; p++ {
			la.udpPorts[uint16(p)] = dummy
		}
		qd, err := la.Socket(core.SockStream)
		if err != nil {
			t.Errorf("socket: %v", err)
			return
		}
		_, err = la.Connect(qd, core.Addr{IP: ipB, Port: 80})
		if !errors.Is(err, core.ErrAddrNotAvail) {
			t.Errorf("connect with exhausted ports = %v, want ErrAddrNotAvail", err)
		}
		if n := la.Tokens().Outstanding(); n != 0 {
			t.Errorf("outstanding qtokens after failed connect = %d, want 0", n)
		}
	})
	eng.Run()
}

// TestRxChecksumDrop: an inbound frame whose payload was corrupted in
// flight is dropped and counted, and the datagram never reaches the socket.
func TestRxChecksumDrop(t *testing.T) {
	eng, la, lb := pair(t, 12, simnet.DefaultLink(), true)
	eng.Spawn(lb.Node(), func() {
		qd, err := lb.Socket(core.SockDgram)
		if err != nil {
			t.Errorf("socket: %v", err)
			return
		}
		if err := lb.Bind(qd, lb.Addr(9000)); err != nil {
			t.Errorf("bind: %v", err)
			return
		}
		// Wait drives the RX poll (the libOS is cooperatively scheduled);
		// the corrupted datagram is dropped, so this pop never completes.
		pqt, _ := lb.Pop(qd)
		if ev, err := lb.Wait(pqt); err == nil && ev.Err == nil {
			t.Errorf("pop completed with corrupted datagram: %+v", ev)
		}
	})
	eng.Spawn(la.Node(), func() {
		// Build a correct UDP frame by hand, then flip one payload bit
		// after the checksum is computed — the bit flip a faulty link or
		// NIC would introduce.
		payload := []byte("datagram that will be corrupted")
		h := wire.UDPHeader{SrcPort: 5000, DstPort: 9000, Length: uint16(wire.UDPHeaderLen + len(payload))}
		hdr := make([]byte, wire.UDPHeaderLen)
		h.Marshal(hdr, ipA, ipB, payload)
		payload[3] ^= 0x10
		la.sendIPv4(lb.port.MAC(), ipB, wire.ProtoUDP, hdr, payload, 0)
	})
	eng.Run()
	if got := lb.Stats().RxChecksumDrops; got != 1 {
		t.Fatalf("RxChecksumDrops = %d, want 1", got)
	}
	if got := lb.Stats().RxBadChecksum; got != 1 {
		t.Fatalf("RxBadChecksum = %d, want 1", got)
	}
}

// TestRTOExhaustionFailsOps: when the peer blackholes mid-connection, RTO
// backoff eventually gives up and every pending and future push/pop fails
// with ErrConnTimeout — the application observes the outage, nothing hangs.
func TestRTOExhaustionFailsOps(t *testing.T) {
	eng, la, lb := pair(t, 13, simnet.DefaultLink(), true)
	eng.Spawn(lb.Node(), echoServer(t, lb, 80))
	eng.Spawn(la.Node(), func() {
		qd, _ := la.Socket(core.SockStream)
		cqt, err := la.Connect(qd, core.Addr{IP: ipB, Port: 80})
		if err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		if ev, err := la.Wait(cqt); err != nil || ev.Err != nil {
			t.Errorf("connect wait: %v %v", err, ev.Err)
			return
		}
		// Blackhole the client's TX: every frame (data, retransmissions,
		// the final RST) is dropped at the NIC, as with a dead link.
		plan := faults.NewPlan(13)
		stall := plan.Site("tx_stall", faults.Spec{Every: 1, Duration: 5 * time.Second})
		la.port.(*dpdkdev.Port).SetFaults(dpdkdev.Faults{TxStall: stall})

		pqt := push(t, la, qd, []byte("into the void"))
		ev, err := la.Wait(pqt)
		if err != nil {
			t.Errorf("push wait: %v", err)
			return
		}
		if !errors.Is(ev.Err, ErrConnTimeout) {
			t.Errorf("pending push after blackhole = %v, want ErrConnTimeout", ev.Err)
		}
		// Future operations fail fast with the same error.
		pqt2, err := la.Push(qd, core.SGA(memory.CopyFrom(la.Heap(), []byte("x"))))
		if err != nil {
			t.Errorf("push after timeout: %v", err)
			return
		}
		if ev, _ := la.Wait(pqt2); !errors.Is(ev.Err, ErrConnTimeout) {
			t.Errorf("future push = %v, want ErrConnTimeout", ev.Err)
		}
		popqt, err := la.Pop(qd)
		if err != nil {
			t.Errorf("pop after timeout: %v", err)
			return
		}
		if ev, _ := la.Wait(popqt); !errors.Is(ev.Err, ErrConnTimeout) {
			t.Errorf("future pop = %v, want ErrConnTimeout", ev.Err)
		}
		if n := la.Tokens().Outstanding(); n != 0 {
			t.Errorf("outstanding qtokens after timeout = %d, want 0", n)
		}
	})
	eng.Run()
}

// TestARPGiveUpUnreachable: connecting to an address no host answers for
// fails with ErrHostUnreachable after bounded ARP retries, and the negative
// cache makes an immediate retry fail fast without a fresh request storm.
func TestARPGiveUpUnreachable(t *testing.T) {
	ipGhost := wire.IPAddr{10, 0, 0, 99}
	eng, la, _ := pair(t, 14, simnet.DefaultLink(), false)
	eng.Spawn(la.Node(), func() {
		qd, _ := la.Socket(core.SockStream)
		cqt, err := la.Connect(qd, core.Addr{IP: ipGhost, Port: 80})
		if err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		ev, err := la.Wait(cqt)
		if err != nil {
			t.Errorf("connect wait: %v", err)
			return
		}
		if !errors.Is(ev.Err, core.ErrHostUnreachable) {
			t.Errorf("connect to unanswered ARP = %v, want ErrHostUnreachable", ev.Err)
		}
		if got := la.Stats().ARPGiveUps; got != 1 {
			t.Errorf("ARPGiveUps = %d, want 1", got)
		}

		// Immediate retry: the negative cache answers without transmitting
		// a single frame (no retry storm against a dead host).
		txBefore := la.Stats().TxFrames
		qd2, _ := la.Socket(core.SockStream)
		cqt2, err := la.Connect(qd2, core.Addr{IP: ipGhost, Port: 80})
		if err != nil {
			t.Errorf("reconnect: %v", err)
			return
		}
		if ev, _ := la.Wait(cqt2); !errors.Is(ev.Err, core.ErrHostUnreachable) {
			t.Errorf("reconnect = %v, want ErrHostUnreachable", ev.Err)
		}
		if tx := la.Stats().TxFrames - txBefore; tx != 0 {
			t.Errorf("negative-cached retry transmitted %d frames, want 0", tx)
		}
		if got := la.Stats().ARPGiveUps; got != 1 {
			t.Errorf("ARPGiveUps after cached retry = %d, want 1", got)
		}

		// A queued UDP send to the same host fails through the same path.
		uqd, _ := la.Socket(core.SockDgram)
		uqt, err := la.PushTo(uqd, core.SGA(memory.CopyFrom(la.Heap(), []byte("hello?"))), core.Addr{IP: ipGhost, Port: 7})
		if err != nil {
			t.Errorf("pushto: %v", err)
			return
		}
		if ev, _ := la.Wait(uqt); !errors.Is(ev.Err, core.ErrHostUnreachable) {
			t.Errorf("udp push to unreachable = %v, want ErrHostUnreachable", ev.Err)
		}
		if n := la.Tokens().Outstanding(); n != 0 {
			t.Errorf("outstanding qtokens = %d, want 0", n)
		}
	})
	eng.Run()
}
