// Package catnip is Demikernel's DPDK library OS (paper §6.3): a complete
// user-space network stack — ARP, IPv4, UDP and TCP with Cubic congestion
// control per RFCs 793 and 7323 — implemented over the raw burst rx/tx
// interface of a (simulated) DPDK port, exposed through PDPIX queues.
//
// The stack is deterministic: every operation is parameterized on the
// node's virtual clock, so a given trace of packets and timings replays
// identically (paper: "the Catnip TCP stack is deterministic").
//
// Execution model: application Wait calls drive the scheduler loop. Step
// runs runnable coroutines (application first, then background protocol
// coroutines) and, when none are runnable, performs the fast-path poll of
// the device — the same priority order as the paper's fast-path coroutine,
// which is "always runnable" at the lowest priority.
package catnip

import (
	"time"

	"demikernel/internal/core"
	"demikernel/internal/costmodel"
	"demikernel/internal/dpdkdev"
	"demikernel/internal/dtrace"
	"demikernel/internal/memory"
	"demikernel/internal/sched"
	"demikernel/internal/sim"
	"demikernel/internal/simnet"
	"demikernel/internal/telemetry"
	"demikernel/internal/wire"
)

// Config tunes the stack.
type Config struct {
	// IP is the interface address.
	IP wire.IPAddr
	// MSS is the TCP maximum segment size.
	MSS int
	// RecvBufSize is the TCP receive buffer (advertised window ceiling).
	RecvBufSize int
	// RTOMin and RTOInit bound the retransmission timer (datacenter
	// tuning; RFC 6298 structure with tighter constants).
	RTOMin, RTOInit, RTOMax time.Duration
	// MSL is the maximum segment lifetime governing TIME_WAIT (2*MSL).
	MSL time.Duration
	// DelayedAck, when non-zero, defers pure acknowledgments up to this
	// long (or until a second segment arrives), trading a little latency
	// for fewer ack packets. Zero acks immediately — the µs-scale
	// default, since µs RTTs cannot absorb classic 40 ms delayed acks.
	DelayedAck time.Duration
	// ZeroCopy disables the copy-based slow path when true for buffers
	// over the threshold; always true except in the ablation benchmark.
	ForceCopy bool
	// Per-packet CPU costs. Defaults are Catnip's measured costs
	// (costmodel); baselines modelling other stacks override them.
	TCPIngressCost, TCPEgressCost time.Duration
	UDPIngressCost, UDPEgressCost time.Duration
	// Tracer, when set, records every frame entering and leaving the
	// stack with its virtual timestamp ('R'/'T'), enabling the paper's
	// trace-replay debugging (§6.3). internal/trace provides one.
	Tracer Tracer
}

// Tracer receives every frame crossing the stack boundary.
type Tracer interface {
	RecordFrame(dir byte, at sim.Time, data []byte)
}

// Device is the raw NIC interface the stack drives: one rx/tx queue pair
// plus the port identity. A whole single-queue dpdkdev.Port and one
// dpdkdev.Queue of a multi-queue RSS port both satisfy it — the latter is
// how internal/multicore runs one Catnip instance per core over its own
// queue pair.
type Device interface {
	MAC() simnet.MAC
	RxBurst(max int) []*dpdkdev.Mbuf
	TxBurst(frames [][]byte) int
}

// DefaultConfig returns datacenter-tuned defaults.
func DefaultConfig(ip wire.IPAddr) Config {
	return Config{
		IP:             ip,
		MSS:            1460,
		RecvBufSize:    256 << 10,
		RTOMin:         1 * time.Millisecond,
		RTOInit:        5 * time.Millisecond,
		RTOMax:         200 * time.Millisecond,
		MSL:            10 * time.Millisecond,
		TCPIngressCost: costmodel.TCPIngress,
		TCPEgressCost:  costmodel.TCPEgress,
		UDPIngressCost: costmodel.UDPIngress,
		UDPEgressCost:  costmodel.UDPEgress,
	}
}

// fourTuple demultiplexes TCP segments to connections. The local IP is the
// interface's, so it is omitted.
type fourTuple struct {
	localPort  uint16
	remoteIP   wire.IPAddr
	remotePort uint16
}

// Stats counts stack activity.
type Stats struct {
	RxFrames, TxFrames     uint64
	RxTCP, RxUDP, RxARP    uint64
	TCPRetransmits         uint64
	TCPFastRetransmits     uint64
	TCPOutOfOrder          uint64
	TCPDupAcksSent         uint64
	RxDroppedNoPort        uint64
	RxBadChecksum          uint64
	RxChecksumDrops        uint64 // subset of RxBadChecksum: definite checksum mismatches
	RxAllocDrops           uint64 // inbound payloads dropped because the heap was exhausted
	ARPGiveUps             uint64 // ARP resolutions abandoned after bounded retries
	ZeroCopyTx, CopiedTx   uint64
	PureAcks, WindowProbes uint64
}

// LibOS is the Catnip library OS instance for one node + device queue.
type LibOS struct {
	node   *sim.Node
	port   Device
	heap   *memory.Heap
	sched  *sched.Scheduler
	tokens *core.TokenTable
	waiter core.Waiter
	qds    *core.QDescTable
	cfg    Config
	rng    *sim.Rand

	arp       *arpCache
	udpPorts  map[uint16]*udpSocket
	listeners map[uint16]*tcpListener
	conns     map[fourTuple]*tcpConn

	nextEphemeral uint16
	ipID          uint16
	stats         Stats

	reg     *telemetry.Registry
	telCwnd *telemetry.Histogram // cwnd sampled at every ack arrival
	telOOO  *telemetry.Histogram // OOO-queue depth sampled at every insert

	dt    *dtrace.Hop // distributed-trace hop; nil when untraced
	rxCtx uint64      // trace context of the frame currently being processed

	loadProbe LoadProbe // nil unless this stack piggybacks load (rack servers)

	// Tenant bracketing (tenant.go): curTenant tags sockets created while
	// a tenant.View call is in flight; tenantIdx maps tenant ids to the
	// scheduler's dense WFQ indices.
	curTenant uint32
	curTIdx   uint8
	tenantIdx map[uint32]uint8
}

// A LoadProbe supplies the RackSched-style load signal a server stack
// piggybacks on every frame it transmits: the server's identity and its
// instantaneous outstanding-request count. The stack calls it at frame-build
// time, so the trailer always carries the load at the moment the reply left.
type LoadProbe func() (server uint16, outstanding uint32)

// New builds a Catnip libOS on a DPDK port. The heap becomes DMA-capable
// for the port (the DPDK mempool model: registration is a no-op cookie).
func New(node *sim.Node, port *dpdkdev.Port, cfg Config) *LibOS {
	return NewOnDevice(node, port, cfg)
}

// NewOnDevice builds a Catnip libOS over any raw queue-pair device — in
// particular one dpdkdev.Queue of an RSS multi-queue port, giving a
// shared-nothing per-core stack (internal/multicore).
func NewOnDevice(node *sim.Node, dev Device, cfg Config) *LibOS {
	l := &LibOS{
		node:          node,
		port:          dev,
		heap:          memory.NewHeap(nil),
		sched:         sched.New(),
		tokens:        core.NewTokenTable(),
		qds:           core.NewQDescTable(),
		cfg:           cfg,
		rng:           node.Engine().Rand().Fork(),
		udpPorts:      make(map[uint16]*udpSocket),
		listeners:     make(map[uint16]*tcpListener),
		conns:         make(map[fourTuple]*tcpConn),
		nextEphemeral: 32768,
	}
	l.arp = newARPCache(l)
	l.waiter = core.Waiter{Table: l.tokens, Runner: l}
	l.initTelemetry()
	return l
}

// initTelemetry creates the stack's metric registry and self-instruments:
// qtoken issue→complete latency, TCP cwnd/OOO-depth distributions, and the
// stack, scheduler and allocator counters as sampled gauges (pull model —
// zero hot-path cost). The flight recorder and core id are attached later
// by whoever owns the run (bench harness, multicore group).
func (l *LibOS) initTelemetry() {
	l.reg = telemetry.NewRegistry(l.node.Name() + "/catnip")
	l.telCwnd = l.reg.Histogram("catnip.tcp.cwnd_bytes")
	l.telOOO = l.reg.Histogram("catnip.tcp.ooo_depth")
	l.tokens.Instrument(l.node, 0)
	l.tokens.SetLatencyHist(l.reg.Histogram("core.qtoken_latency_ns"))

	s := &l.stats
	l.reg.Sample("catnip.rx_frames", func() int64 { return int64(s.RxFrames) })
	l.reg.Sample("catnip.tx_frames", func() int64 { return int64(s.TxFrames) })
	l.reg.Sample("catnip.rx_tcp", func() int64 { return int64(s.RxTCP) })
	l.reg.Sample("catnip.rx_udp", func() int64 { return int64(s.RxUDP) })
	l.reg.Sample("catnip.rx_arp", func() int64 { return int64(s.RxARP) })
	l.reg.Sample("catnip.tcp.retransmits", func() int64 { return int64(s.TCPRetransmits) })
	l.reg.Sample("catnip.tcp.fast_retransmits", func() int64 { return int64(s.TCPFastRetransmits) })
	l.reg.Sample("catnip.tcp.out_of_order", func() int64 { return int64(s.TCPOutOfOrder) })
	l.reg.Sample("catnip.tcp.dup_acks_sent", func() int64 { return int64(s.TCPDupAcksSent) })
	l.reg.Sample("catnip.tcp.pure_acks", func() int64 { return int64(s.PureAcks) })
	l.reg.Sample("catnip.tcp.window_probes", func() int64 { return int64(s.WindowProbes) })
	l.reg.Sample("catnip.rx_dropped_no_port", func() int64 { return int64(s.RxDroppedNoPort) })
	l.reg.Sample("catnip.rx_bad_checksum", func() int64 { return int64(s.RxBadChecksum) })
	l.reg.Sample("catnip.rx_checksum_drops", func() int64 { return int64(s.RxChecksumDrops) })
	l.reg.Sample("catnip.rx_alloc_drops", func() int64 { return int64(s.RxAllocDrops) })
	l.reg.Sample("catnip.arp_giveups", func() int64 { return int64(s.ARPGiveUps) })
	l.reg.Sample("catnip.tx_zero_copy", func() int64 { return int64(s.ZeroCopyTx) })
	l.reg.Sample("catnip.tx_copied", func() int64 { return int64(s.CopiedTx) })

	sc := l.sched
	l.reg.Sample("sched.polls", func() int64 { return int64(sc.Stats().Polls) })
	l.reg.Sample("sched.empty_scans", func() int64 { return int64(sc.Stats().EmptyScans) })
	l.reg.Sample("sched.spawned", func() int64 { return int64(sc.Stats().Spawned) })
	l.reg.Sample("sched.completed", func() int64 { return int64(sc.Stats().Completed) })
	for c := sched.Class(0); int(c) < sched.NumClasses; c++ {
		c := c
		name := sched.ClassName(c)
		l.reg.Sample("sched.polls."+name, func() int64 { return int64(sc.Stats().PollsByClass[c]) })
		l.reg.Sample("sched.runnable."+name, func() int64 { return int64(sc.Ready(c)) })
		// Time-in-state: every poll charges one SchedQuantum of virtual CPU.
		l.reg.Sample("sched.class_time_ns."+name, func() int64 {
			return int64(sc.Stats().PollsByClass[c]) * int64(costmodel.SchedQuantum)
		})
	}

	l.heap.PublishTelemetry(l.reg, "mem")
}

// AttachDTrace connects the stack to a distributed-trace hop: redeemed
// qtoken spans, frame tx/rx instants, and the wire trailer carrying trace
// contexts between stacks. A nil hop keeps the stack untraced.
func (l *LibOS) AttachDTrace(h *dtrace.Hop) {
	l.dt = h
	l.tokens.SetDTrace(h)
}

// SetLoadProbe makes the stack append the load-tracking wire trailer
// (wire.PutLoadTrailer) to every IPv4 frame it transmits. Rack servers
// install one so the ToR switch model reads their instantaneous load off
// reply frames; a nil probe (the default) keeps frames trailer-free.
func (l *LibOS) SetLoadProbe(p LoadProbe) { l.loadProbe = p }

// Telemetry returns the stack's metric registry.
func (l *LibOS) Telemetry() *telemetry.Registry { return l.reg }

// Node returns the owning simulated host.
func (l *LibOS) Node() *sim.Node { return l.node }

// IP returns the interface address.
func (l *LibOS) IP() wire.IPAddr { return l.cfg.IP }

// Heap returns the DMA-capable application heap.
func (l *LibOS) Heap() *memory.Heap { return l.heap }

// Stats returns a snapshot of stack counters.
func (l *LibOS) Stats() Stats { return l.stats }

// SchedStats returns the per-core coroutine scheduler's counters
// (demikernel.SchedStatser) for utilization breakdowns.
func (l *LibOS) SchedStats() sched.Stats { return l.sched.Stats() }

// Addr returns the interface address with the given port.
func (l *LibOS) Addr(port uint16) core.Addr { return core.Addr{IP: l.cfg.IP, Port: port} }

// --- Runner (drives the Waiter) ---

// Step runs one scheduler quantum: a runnable coroutine if any (application
// and background work first), otherwise the device fast path. It reports
// whether any work was done.
func (l *LibOS) Step() bool {
	if l.sched.Runnable() {
		l.node.Charge(costmodel.SchedQuantum)
		return l.sched.RunOne()
	}
	return l.pollDevice()
}

// Block parks the node until an event (frame arrival, timer) or the
// deadline. It reports false when the simulation is stopping.
func (l *LibOS) Block(deadline sim.Time) bool {
	return l.node.Park(deadline)
}

// Now returns the node's virtual clock.
func (l *LibOS) Now() sim.Time { return l.node.Now() }

// pollDevice is the fast-path poll (paper Figure 4, step 4): drain an rx
// burst and process each frame to completion.
func (l *LibOS) pollDevice() bool {
	mbufs := l.port.RxBurst(32)
	if len(mbufs) == 0 {
		l.node.Charge(costmodel.PollEmpty)
		return false
	}
	for _, m := range mbufs {
		l.handleFrame(m.Data)
		m.Free()
	}
	return true
}

// InjectFrame feeds a raw Ethernet frame into the stack as if it had
// arrived from the device — the trace-replay entry point (paper §6.3).
func (l *LibOS) InjectFrame(data []byte) { l.handleFrame(data) }

// handleFrame dispatches one received Ethernet frame.
func (l *LibOS) handleFrame(data []byte) {
	l.stats.RxFrames++
	if l.cfg.Tracer != nil {
		l.cfg.Tracer.RecordFrame('R', l.node.Now(), data)
	}
	eth, payload, err := wire.ParseEth(data)
	if err != nil {
		return
	}
	switch eth.EtherType {
	case wire.EtherTypeARP:
		l.stats.RxARP++
		l.node.Charge(costmodel.ARPProcess)
		l.arp.handle(payload)
	case wire.EtherTypeIPv4:
		l.handleIPv4(eth, payload)
	}
}

// handleIPv4 parses and dispatches an IPv4 packet.
func (l *LibOS) handleIPv4(eth wire.EthHeader, payload []byte) {
	ip, body, err := wire.ParseIPv4(payload)
	if err != nil {
		l.stats.RxBadChecksum++
		if wire.IsChecksumError(err) {
			l.stats.RxChecksumDrops++
		}
		return
	}
	if ip.Dst != l.cfg.IP {
		return
	}
	// A trace trailer (if any) sits past the IPv4 packet, outside TotalLen:
	// the parser never sees it. Expose the context to the protocol handlers
	// for the duration of this frame's processing.
	if l.dt != nil && len(payload) >= int(ip.TotalLen)+wire.TraceTrailerLen {
		if ctx := wire.ParseTraceTrailer(payload[ip.TotalLen:]); ctx != 0 {
			l.rxCtx = ctx
			l.dt.WireRx(ctx, int64(l.node.Now()))
			defer func() { l.rxCtx = 0 }()
		}
	}
	switch ip.Proto {
	case wire.ProtoUDP:
		l.stats.RxUDP++
		l.node.Charge(l.cfg.UDPIngressCost)
		l.handleUDP(ip, body)
	case wire.ProtoTCP:
		l.stats.RxTCP++
		l.node.Charge(l.cfg.TCPIngressCost)
		l.handleTCP(eth, ip, body)
	}
}

// --- Egress helpers ---

// sendIPv4 builds and transmits one IPv4 packet with the given transport
// header bytes and payload, to the resolved MAC dst. A nonzero ctx appends
// the distributed-trace trailer past the IPv4 packet — invisible to the
// receiving stack's parser (which trims to TotalLen) but carried by the
// frame, so the trace context crosses the wire with the request.
func (l *LibOS) sendIPv4(dstMAC simnet.MAC, dstIP wire.IPAddr, proto uint8, transport, payload []byte, ctx uint64) {
	l.ipID++
	total := wire.IPv4HeaderLen + len(transport) + len(payload)
	flen := wire.EthHeaderLen + total
	if ctx != 0 {
		flen += wire.TraceTrailerLen
	}
	if l.loadProbe != nil {
		flen += wire.LoadTrailerLen
	}
	frame := make([]byte, flen)
	eth := wire.EthHeader{Dst: dstMAC, Src: l.port.MAC(), EtherType: wire.EtherTypeIPv4}
	n := eth.Marshal(frame)
	ip := wire.IPv4Header{
		TotalLen: uint16(total),
		ID:       l.ipID,
		Flags:    wire.DontFragment,
		TTL:      64,
		Proto:    proto,
		Src:      l.cfg.IP,
		Dst:      dstIP,
	}
	n += ip.Marshal(frame[n:])
	n += copy(frame[n:], transport)
	n += copy(frame[n:], payload)
	if ctx != 0 {
		wire.PutTraceTrailer(frame[n:], ctx)
		l.dt.WireTx(ctx, int64(l.node.Now()))
		n += wire.TraceTrailerLen
	}
	if l.loadProbe != nil {
		id, load := l.loadProbe()
		wire.PutLoadTrailer(frame[n:], id, load)
	}
	l.txFrame(frame)
}

// txFrame records and transmits one frame.
func (l *LibOS) txFrame(frame []byte) {
	if l.cfg.Tracer != nil {
		l.cfg.Tracer.RecordFrame('T', l.node.Now(), frame)
	}
	l.port.TxBurst([][]byte{frame})
	l.stats.TxFrames++
}

// timerWake arranges for h.Wake at virtual time t. Spurious wakes are fine;
// coroutines recheck their deadlines.
func (l *LibOS) timerWake(t sim.Time, h sched.Handle) {
	l.node.Engine().At(t, l.node, func() { h.Wake() })
}

// allocEphemeral returns an unused local port, or ErrAddrNotAvail when the
// whole port space is consumed — an overload condition the application must
// see as a failed connect/send, not a crashed datapath.
func (l *LibOS) allocEphemeral() (uint16, error) {
	for i := 0; i < 65536; i++ {
		p := l.nextEphemeral
		l.nextEphemeral++
		if l.nextEphemeral == 0 {
			l.nextEphemeral = 32768
		}
		if _, udpUsed := l.udpPorts[p]; udpUsed {
			continue
		}
		if _, lnUsed := l.listeners[p]; lnUsed {
			continue
		}
		return p, nil
	}
	return 0, core.ErrAddrNotAvail
}

// --- PDPIX entry points ---

// Socket creates a TCP (SockStream) or UDP (SockDgram) socket queue.
func (l *LibOS) Socket(t core.SockType) (core.QDesc, error) {
	l.node.Charge(costmodel.Libcall)
	switch t {
	case core.SockStream:
		s := &tcpSocket{lib: l, tenant: l.curTenant, tidx: l.curTIdx}
		s.qd = l.qds.Insert(s)
		return s.qd, nil
	case core.SockDgram:
		s := &udpSocket{lib: l, tenant: l.curTenant, theap: l.tenantHeapFor(l.curTenant)}
		s.qd = l.qds.Insert(s)
		return s.qd, nil
	default:
		return core.InvalidQD, core.ErrNotSupported
	}
}

// Queue creates an in-memory queue.
func (l *LibOS) Queue() (core.QDesc, error) {
	l.node.Charge(costmodel.Libcall)
	var q *core.MemQueue
	qd := l.qds.Insert(nil)
	q = core.NewMemQueue(qd)
	l.replaceQD(qd, q)
	return qd, nil
}

// replaceQD swaps the state stored for qd (used when a placeholder needed
// the descriptor value first).
func (l *LibOS) replaceQD(qd core.QDesc, v any) {
	l.qds.Remove(qd)
	// Re-insert preserving qd: QDescTable always increments, so emulate by
	// direct map access via a tiny helper below.
	l.qds.Restore(qd, v)
}

// Open is not supported by the pure network libOS; the Catnip×Cattree
// integration provides it.
func (l *LibOS) Open(name string) (core.QDesc, error) {
	return core.InvalidQD, core.ErrNotSupported
}

// Bind assigns a local address to a socket.
func (l *LibOS) Bind(qd core.QDesc, addr core.Addr) error {
	l.node.Charge(costmodel.Libcall)
	q, ok := l.qds.Lookup(qd)
	if !ok {
		return core.ErrBadQDesc
	}
	switch s := q.(type) {
	case *udpSocket:
		return s.bind(addr)
	case *tcpSocket:
		return s.bind(addr)
	default:
		return core.ErrNotSupported
	}
}

// Listen turns a bound stream socket into a listener.
func (l *LibOS) Listen(qd core.QDesc, backlog int) error {
	l.node.Charge(costmodel.Libcall)
	q, ok := l.qds.Lookup(qd)
	if !ok {
		return core.ErrBadQDesc
	}
	s, ok := q.(*tcpSocket)
	if !ok {
		return core.ErrNotSupported
	}
	return s.listen(backlog)
}

// Accept asks for the next inbound connection on a listening queue.
func (l *LibOS) Accept(qd core.QDesc) (core.QToken, error) {
	l.node.Charge(costmodel.Libcall)
	q, ok := l.qds.Lookup(qd)
	if !ok {
		return core.InvalidQToken, core.ErrBadQDesc
	}
	s, ok := q.(*tcpSocket)
	if !ok || s.listener == nil {
		return core.InvalidQToken, core.ErrNotSupported
	}
	op := l.tokens.New()
	s.listener.accept(op)
	return op.Token(), nil
}

// Connect initiates a connection to addr.
func (l *LibOS) Connect(qd core.QDesc, addr core.Addr) (core.QToken, error) {
	l.node.Charge(costmodel.Libcall)
	q, ok := l.qds.Lookup(qd)
	if !ok {
		return core.InvalidQToken, core.ErrBadQDesc
	}
	switch s := q.(type) {
	case *tcpSocket:
		// The socket validates (and allocates its ephemeral port) before
		// minting the op, so error returns leave nothing outstanding.
		return s.connect(addr)
	case *udpSocket:
		// Datagram connect just fixes the default destination.
		op := l.tokens.New()
		s.remote = addr
		op.Complete(core.QEvent{QD: qd, Op: core.OpConnect, NewQD: qd})
		return op.Token(), nil
	default:
		return core.InvalidQToken, core.ErrNotSupported
	}
}

// Close releases a queue.
func (l *LibOS) Close(qd core.QDesc) error {
	l.node.Charge(costmodel.Libcall)
	q, ok := l.qds.Lookup(qd)
	if !ok {
		return core.ErrBadQDesc
	}
	switch s := q.(type) {
	case *udpSocket:
		s.close()
	case *tcpSocket:
		s.close()
	case *core.MemQueue:
		s.Destroy() // descriptor gone: free undrained data, never leak
	}
	l.qds.Remove(qd)
	return nil
}

// Push submits outbound data on a queue (paper: egress is inlined here on
// the error-free path, Figure 4 step 8).
func (l *LibOS) Push(qd core.QDesc, sga core.SGArray) (core.QToken, error) {
	return l.pushInternal(qd, sga, core.Addr{})
}

// PushTo is Push with an explicit datagram destination (demi_pushto).
func (l *LibOS) PushTo(qd core.QDesc, sga core.SGArray, to core.Addr) (core.QToken, error) {
	return l.pushInternal(qd, sga, to)
}

func (l *LibOS) pushInternal(qd core.QDesc, sga core.SGArray, to core.Addr) (core.QToken, error) {
	l.node.Charge(costmodel.Libcall)
	if len(sga.Segs) == 0 {
		return core.InvalidQToken, core.ErrEmptySGA
	}
	q, ok := l.qds.Lookup(qd)
	if !ok {
		return core.InvalidQToken, core.ErrBadQDesc
	}
	op := l.tokens.New()
	op.Trace(sga.TraceCtx())
	switch s := q.(type) {
	case *udpSocket:
		s.push(op, sga, to)
	case *tcpSocket:
		if s.conn == nil {
			return core.InvalidQToken, core.ErrNotBound
		}
		s.conn.push(op, sga)
	case *core.MemQueue:
		s.Push(op, sga)
	default:
		return core.InvalidQToken, core.ErrNotSupported
	}
	return op.Token(), nil
}

// Pop asks for the next inbound data on a queue.
func (l *LibOS) Pop(qd core.QDesc) (core.QToken, error) {
	l.node.Charge(costmodel.Libcall)
	q, ok := l.qds.Lookup(qd)
	if !ok {
		return core.InvalidQToken, core.ErrBadQDesc
	}
	op := l.tokens.New()
	switch s := q.(type) {
	case *udpSocket:
		s.pop(op)
	case *tcpSocket:
		if s.conn == nil {
			return core.InvalidQToken, core.ErrNotBound
		}
		s.conn.pop(op)
	case *core.MemQueue:
		s.Pop(op)
	default:
		return core.InvalidQToken, core.ErrNotSupported
	}
	return op.Token(), nil
}

// Wait blocks until qt completes.
func (l *LibOS) Wait(qt core.QToken) (core.QEvent, error) { return l.waiter.Wait(qt) }

// WaitAny blocks until one of qts completes.
func (l *LibOS) WaitAny(qts []core.QToken, timeout time.Duration) (int, core.QEvent, error) {
	return l.waiter.WaitAny(qts, timeout)
}

// WaitAll blocks until all of qts complete.
func (l *LibOS) WaitAll(qts []core.QToken, timeout time.Duration) ([]core.QEvent, error) {
	return l.waiter.WaitAll(qts, timeout)
}

// Tokens exposes the qtoken table for libOS integration (demi.Combined).
func (l *LibOS) Tokens() *core.TokenTable { return l.tokens }

// SeedARP installs a static ARP entry (benchmarks pre-warm caches to
// measure the fast path, as the paper does).
func (l *LibOS) SeedARP(ip wire.IPAddr, mac simnet.MAC) { l.arp.Seed(ip, mac) }

// TryTake redeems a completed qtoken (demi.Drivable).
func (l *LibOS) TryTake(qt core.QToken) (core.QEvent, bool, error) {
	return l.tokens.TryTake(qt)
}
