package catnip

import "encoding/binary"

// The distributed-trace wire trailer rides after the IPv4 packet, in the
// slack between TotalLen and the frame's end: [2 magic bytes][8-byte
// big-endian trace ID]. Receivers that know about it (this stack) peel the
// context off before protocol dispatch; receivers that don't (a parser
// trimming to TotalLen) never see it. Ten bytes on sampled frames only —
// unsampled requests send byte-identical frames to an untraced build.
const (
	traceMagic0     = 0xD7
	traceMagic1     = 0xCE
	traceTrailerLen = 10
)

// putTraceTrailer writes the trailer for ctx into b (len >= traceTrailerLen).
//
//demi:nonalloc
func putTraceTrailer(b []byte, ctx uint64) {
	b[0] = traceMagic0
	b[1] = traceMagic1
	binary.BigEndian.PutUint64(b[2:], ctx)
}

// parseTraceTrailer returns the trace context from b, or 0 when b does not
// start with a trailer.
//
//demi:nonalloc
func parseTraceTrailer(b []byte) uint64 {
	if len(b) < traceTrailerLen || b[0] != traceMagic0 || b[1] != traceMagic1 {
		return 0
	}
	return binary.BigEndian.Uint64(b[2:])
}
