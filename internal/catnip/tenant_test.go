package catnip

import (
	"testing"

	"demikernel/internal/dpdkdev"
	"demikernel/internal/sim"
	"demikernel/internal/simnet"
	"demikernel/internal/wire"
)

// tenantRig hand-builds an established connection owned by tenant tid
// with a byte quota on its heap region.
func tenantRig(tid uint32, quota int64) (*LibOS, *tcpConn) {
	eng := sim.NewEngine(1)
	sw := simnet.NewSwitch(eng, simnet.DefaultSwitch())
	node := eng.NewNode("srv")
	port := dpdkdev.Attach(sw, node, simnet.DefaultLink(), 1024, 0)
	l := New(node, port, DefaultConfig(wire.IPAddr{10, 0, 0, 1}))
	l.RegisterTenant(tid, 1)
	l.heap.SetTenantQuota(tid, quota)
	tuple := fourTuple{localPort: 80, remoteIP: wire.IPAddr{10, 0, 0, 2}, remotePort: 9999}
	c := newTCPConn(l, 1, tuple, tid, l.tenantIdx[tid])
	c.state = stateEstablished
	c.macKnown = true
	c.remoteMAC = simnet.MAC{2, 2, 2, 2, 2, 2}
	c.rcvNxt = 1000
	l.conns[tuple] = c
	return l, c
}

// TestTenantRxQuotaNoStateAdvance: when the owning tenant's heap quota is
// exhausted, an in-order segment is dropped without advancing rcvNxt — no
// ack covers it, so the peer retransmits once memory frees up. The quota
// breach must never corrupt receive state (the PR 4 complete-or-error
// contract applied to the rx path).
func TestTenantRxQuotaNoStateAdvance(t *testing.T) {
	l, c := tenantRig(7, 128) // quota far below one segment
	payload := make([]byte, 512)
	before := c.rcvNxt

	c.processPayload(before, payload)

	if c.rcvNxt != before {
		t.Fatalf("rcvNxt advanced on quota drop: %d -> %d", before, c.rcvNxt)
	}
	if len(c.recvQ) != 0 || c.recvBytes != 0 {
		t.Fatalf("payload queued despite quota drop: %d bufs, %d bytes", len(c.recvQ), c.recvBytes)
	}
	if l.stats.RxAllocDrops != 1 {
		t.Fatalf("RxAllocDrops = %d, want 1", l.stats.RxAllocDrops)
	}
	if got := l.heap.TenantStats(7).Rejects; got != 1 {
		t.Fatalf("tenant heap rejects = %d, want 1", got)
	}

	// Raising the quota models memory freeing up: the retransmitted
	// segment is accepted at the same sequence and state advances.
	l.heap.SetTenantQuota(7, 1<<20)
	c.processPayload(before, payload)
	if want := before + uint32(len(payload)); c.rcvNxt != want {
		t.Fatalf("rcvNxt after retransmit = %d, want %d", c.rcvNxt, want)
	}
	if len(c.recvQ) != 1 {
		t.Fatalf("recvQ = %d bufs, want 1", len(c.recvQ))
	}
	// The accepted bytes are charged to the owning tenant's region.
	if used := l.heap.TenantStats(7).Used; used < int64(len(payload)) {
		t.Fatalf("tenant used = %d, want >= %d", used, len(payload))
	}
}

// TestTenantRxChargesOwningTenant: rx allocations land in the connection
// owner's region, not the host's shared accounting, so one tenant's
// inbound flood can never exhaust the heap for its neighbors.
func TestTenantRxChargesOwningTenant(t *testing.T) {
	l, c := tenantRig(3, 1<<20)
	c.processPayload(c.rcvNxt, make([]byte, 256))
	if used := l.heap.TenantStats(3).Used; used < 256 {
		t.Fatalf("tenant 3 used = %d, want >= 256", used)
	}
	// Freeing the delivered buffer credits the same account.
	for _, b := range c.recvQ {
		b.Free()
	}
	if used := l.heap.TenantStats(3).Used; used != 0 {
		t.Fatalf("tenant 3 used after free = %d, want 0", used)
	}
}
