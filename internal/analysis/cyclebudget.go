package analysis

import (
	"go/ast"
	"go/types"
)

// CyclebudgetAnalyzer checks //demi:budget=<duration> annotations against
// the engine's static worst-case cost estimate (CostEstimate, DESIGN.md
// §13). The paper's argument is that datapath operations must stay in the
// sub-microsecond regime (§2, Table 2); a budget annotation pins a hot
// function's cost so that code growth past the model's estimate fails the
// build instead of quietly regressing the tail. The estimate is coarse and
// deterministic — the gate is a regression tripwire, not a cycle count.
func CyclebudgetAnalyzer() *Analyzer {
	a := &Analyzer{
		Name: "cyclebudget",
		Doc:  "//demi:budget functions must fit the static worst-case cost estimate",
	}
	a.Run = func(p *Pass) { runCyclebudget(p) }
	return a
}

const budgetHint = "trim the hot path (or raise the //demi:budget with a rationale); use demi-vet -costs to see current estimates"

func runCyclebudget(p *Pass) {
	for _, file := range p.Pkg.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := p.Pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			budget, ok := p.Mod.BudgetOf(fn)
			if !ok {
				continue
			}
			est := p.Mod.CostEstimate(fn)
			if est == CostUnbounded {
				p.Reportf(fd.Name.Pos(), budgetHint,
					"%s declares //demi:budget=%s but its worst-case cost is unbounded (recursion)",
					fd.Name.Name, budget.Duration())
				continue
			}
			if est > budget {
				p.Reportf(fd.Name.Pos(), budgetHint,
					"%s estimates %s worst-case, over its //demi:budget=%s",
					fd.Name.Name, est.Duration(), budget.Duration())
			}
		}
	}
}
