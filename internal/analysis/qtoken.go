package analysis

import (
	"go/ast"
	"go/types"
)

// QTokenAnalyzer enforces qtoken discipline (paper §4.2): every qtoken
// minted by an asynchronous PDPIX call (push, pop, accept, connect, or any
// other producer returning core.QToken) represents an outstanding
// operation whose completion someone must redeem. A token assigned to _,
// dropped as a bare expression, or bound to a variable that is never
// passed onward (to Wait/WaitAny/WaitAll or any helper), returned, or
// stored is an operation whose completion — and, for pops, whose received
// buffers — is stranded forever. The chaos soak (PR 4) detects stranded
// tokens at run time on the paths it happens to drive; this analyzer
// rejects them on every path at build time.
func QTokenAnalyzer() *Analyzer {
	a := &Analyzer{
		Name: "qtoken",
		Doc:  "qtokens from push/pop/accept/connect must be waited, returned, or stored",
	}
	a.Run = func(p *Pass) { runQToken(p) }
	return a
}

const qtokenHint = "redeem the qtoken with Wait/WaitAny/WaitAll, return it, or store it for a later wait"

func runQToken(p *Pass) {
	qtok := p.Mod.LookupNamed("internal/core", "QToken")
	if qtok == nil {
		return
	}
	isTok := func(t types.Type) bool {
		n, ok := t.(*types.Named)
		return ok && n.Obj() == qtok.Obj()
	}
	info := p.Pkg.Info
	for _, file := range p.Pkg.Files {
		for _, prod := range findProducers(info, file, isTok, nil) {
			callee := exprString(prod.call.Fun)
			switch {
			case prod.dropped:
				p.Reportf(prod.call.Pos(), qtokenHint,
					"qtoken returned by %s is dropped", callee)
			case prod.blank:
				p.Reportf(prod.call.Pos(), qtokenHint,
					"qtoken returned by %s is assigned to _ and never redeemed", callee)
			case prod.obj != nil:
				if !hasConsumingUse(info, prod.fn, prod.obj) {
					p.Reportf(prod.call.Pos(), qtokenHint,
						"qtoken %q returned by %s is never waited, returned, or stored", prod.obj.Name(), callee)
				}
			}
		}
	}
}

// hasConsumingUse reports whether obj has at least one consuming use in
// body (nil body — package scope — counts as stored).
func hasConsumingUse(info *types.Info, body *ast.BlockStmt, obj types.Object) bool {
	if body == nil {
		return true
	}
	for _, u := range collectUses(info, body, obj, nil) {
		if u.consuming {
			return true
		}
	}
	return false
}
