package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// QTokenAnalyzer enforces qtoken discipline (paper §4.2): every qtoken
// minted by an asynchronous PDPIX call (push, pop, accept, connect, or any
// other producer returning core.QToken) represents an outstanding
// operation whose completion someone must redeem. A token assigned to _,
// dropped as a bare expression, or bound to a variable that is never
// passed onward (to Wait/WaitAny/WaitAll or any helper), returned, or
// stored is an operation whose completion — and, for pops, whose received
// buffers — is stranded forever. The chaos soak (PR 4) detects stranded
// tokens at run time on the paths it happens to drive; this analyzer
// rejects them on every path at build time.
//
// Since the interprocedural engine (summary.go) the redemption test is
// call-graph-aware: a token handed to a module helper that only reads it
// (ParamBorrows) is NOT redeemed — stranding a token through a logging or
// inspection helper is caught. Wait/WaitAny/WaitAll/TryTake always redeem
// by PDPIX contract (sacredConsumers), whatever their bodies look like.
// Helpers that redeem a token parameter on some same-class exit paths but
// strand it on others (ParamMixed) are reported where they are declared.
func QTokenAnalyzer() *Analyzer {
	a := &Analyzer{
		Name: "qtoken",
		Doc:  "qtokens from push/pop/accept/connect must be waited, returned, or stored",
	}
	a.Run = func(p *Pass) { runQToken(p) }
	return a
}

const qtokenHint = "redeem the qtoken with Wait/WaitAny/WaitAll, return it, or store it for a later wait"

func runQToken(p *Pass) {
	if strings.HasSuffix(p.Pkg.Path, "internal/core") {
		return // the token table is the redemption authority for its own ops
	}
	qtok := p.Mod.LookupNamed("internal/core", "QToken")
	if qtok == nil {
		return
	}
	isTok := func(t types.Type) bool {
		n, ok := t.(*types.Named)
		return ok && n.Obj() == qtok.Obj()
	}
	info := p.Pkg.Info
	for _, file := range p.Pkg.Files {
		for _, prod := range findProducers(info, file, isTok, nil) {
			callee := exprString(prod.call.Fun)
			switch {
			case prod.dropped:
				p.Reportf(prod.call.Pos(), qtokenHint,
					"qtoken returned by %s is dropped", callee)
			case prod.blank:
				p.Reportf(prod.call.Pos(), qtokenHint,
					"qtoken returned by %s is assigned to _ and never redeemed", callee)
			case prod.obj != nil:
				checkQTokenRedemption(p, prod, callee)
			}
		}
		checkQTokParamModes(p, file, isTok)
	}
}

// checkQTokenRedemption verifies the token reaches at least one consuming
// use, resolving helper calls against their parameter summaries: passing
// the token to a borrowing helper does not redeem it.
func checkQTokenRedemption(p *Pass, prod producer, callee string) {
	if prod.fn == nil {
		return // package scope: stored
	}
	var borrowed string
	for _, u := range p.Mod.adjustedUses(p.Pkg, prod.fn, prod.obj, trackQTok) {
		if u.consuming {
			return
		}
		if u.borrowed {
			borrowed = u.how
		}
	}
	if borrowed != "" {
		p.Reportf(prod.call.Pos(), qtokenHint,
			"qtoken %q returned by %s is never redeemed: %s", prod.obj.Name(), callee, borrowed)
		return
	}
	p.Reportf(prod.call.Pos(), qtokenHint,
		"qtoken %q returned by %s is never waited, returned, or stored", prod.obj.Name(), callee)
}

// checkQTokParamModes reports helpers that treat a token parameter
// inconsistently: redeemed on some same-class exit paths, stranded on
// others. Borrowing (inspection) and transfer (redeem-or-store) are both
// legitimate contracts; mixing them strands ops on the leaky paths.
func checkQTokParamModes(p *Pass, file *ast.File, isTok func(types.Type) bool) {
	for _, d := range file.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		fn, ok := p.Pkg.Info.Defs[fd.Name].(*types.Func)
		if !ok {
			continue
		}
		for i, pi := range p.Mod.ParamModes(fn) {
			if pi.Mode != ParamMixed {
				continue
			}
			sig := fn.Type().(*types.Signature)
			if !isTok(sig.Params().At(i).Type()) {
				continue // buffer params are the ownership analyzer's business
			}
			name := sig.Params().At(i).Name()
			for _, ret := range pi.Leaks {
				p.Reportf(ret.Pos(), qtokenHint,
					"qtoken parameter %q of %s is redeemed on some paths but stranded on this return path",
					name, fd.Name.Name)
			}
			if pi.FallsOff {
				p.Reportf(fd.Body.Rbrace, qtokenHint,
					"qtoken parameter %q of %s is redeemed on some paths but stranded when the function falls off the end",
					name, fd.Name.Name)
			}
		}
	}
}
