// Package pollfix seeds run-to-completion violations for the
// polldiscipline analyzer tests: Poll methods and //demi:nonalloc
// functions that block, spawn, or spin — directly or through a helper.
package pollfix

import "sync"

// chanPoller blocks its core on a channel receive.
type chanPoller struct{ ch chan int }

func (p *chanPoller) Poll() bool {
	v := <-p.ch // want `coroutine poll method Poll performs a channel operation`
	return v > 0
}

// lockPoller reaches a mutex through a helper: the finding lands at the
// call site with the helper named.
type lockPoller struct {
	mu sync.Mutex
	n  int
}

func (p *lockPoller) slowCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.n
}

func (p *lockPoller) Poll() bool {
	return p.slowCount() > 0 // want `coroutine poll method Poll reaches a blocking mutex acquisition via call to slowCount`
}

// spinPoller never returns: a poll must yield, not spin.
type spinPoller struct{ n int }

func (p *spinPoller) Poll() bool {
	for { // want `coroutine poll method Poll performs an unbounded loop`
		p.n++
	}
}

func drain(p *chanPoller) {}

// fastDrain is on the nonalloc hot path: spawning a kernel thread from it
// defeats core partitioning.
//
//demi:nonalloc
func fastDrain(p *chanPoller) {
	go drain(p) // want `//demi:nonalloc function fastDrain performs a goroutine spawn`
}

// cleanPoller does bounded, non-blocking work: no findings.
type cleanPoller struct {
	pending []int
	done    int
}

func (p *cleanPoller) Poll() bool {
	for i := 0; i < len(p.pending) && i < 4; i++ {
		p.done += p.pending[i]
	}
	return len(p.pending) > 0
}

// notAPoll is an ordinary method: the discipline only binds poll paths.
func (p *lockPoller) notAPoll() int {
	return p.slowCount()
}
