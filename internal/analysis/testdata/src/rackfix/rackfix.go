// Package rackfix seeds the determinism violations a rack-scale scheduler
// is most tempted by: wall-clock placement timestamps, math/rand tie
// breaking, and map-ordered telemetry dumps (run with a DeterminismConfig
// that includes "rackfix").
package rackfix

import (
	"fmt"
	"time"
)

// placements tracks per-server request counts, keyed by server name.
var placements = map[string]int{}

func placeAt() int64 {
	return time.Now().UnixNano() // want `sim-world code calls time.Now`
}

func decideAfter() {
	time.Sleep(50 * time.Microsecond) // want `sim-world code calls time.Sleep`
}

func dumpPlacements() {
	for s, n := range placements { // want `map iteration order feeds fmt.Printf`
		fmt.Printf("%s=%d\n", s, n)
	}
}

func totalPlacedOK() int {
	total := 0
	for _, n := range placements {
		total += n // order-independent aggregation is fine
	}
	return total
}

// trackedLoadOK mirrors the real ToR: deterministic state, no clock reads.
func trackedLoadOK(tracked []uint32, s int) uint32 { return tracked[s] }
