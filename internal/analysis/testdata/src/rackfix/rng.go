package rackfix

import "math/rand" // want `sim-world package imports math/rand`

// tieBreak is the classic nondeterministic power-of-k mistake.
func tieBreak(n int) int { return rand.Intn(n) }
