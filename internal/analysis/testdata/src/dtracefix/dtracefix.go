// Package dtracefix seeds record-path violations shaped like the
// distributed tracer for the analyzer tests: the event arena must be
// written in place through &slice[i], retention must guard its appends,
// and per-event labels must be pre-interned ids, never strings. The *OK
// functions mirror what internal/dtrace actually does and must be clean.
package dtracefix

type event struct {
	trace uint64
	t0    int64
	kind  uint8
	label uint8
}

type tracer struct {
	events []event
	next   int
	slow   []uint64
	names  map[string]uint8
}

//demi:nonalloc the arena is preallocated; recording writes in place
func recordOK(t *tracer, trace uint64, kind uint8, at int64) {
	e := &t.events[t.next]
	e.trace = trace
	e.t0 = at
	e.kind = kind
	t.next++
	if t.next == len(t.events) {
		t.next = 0
	}
}

//demi:nonalloc
func recordByAppend(t *tracer, trace uint64, at int64) {
	t.events = append(t.events, event{trace: trace, t0: at}) // want `append without a capacity guard`
}

//demi:nonalloc
func retainOK(t *tracer, root uint64) {
	if len(t.slow) < cap(t.slow) {
		t.slow = append(t.slow, root)
	}
}

//demi:nonalloc
func labelPerEvent(t *tracer, name string) uint8 {
	t.names[name] = uint8(len(t.names)) // want `map assignment may allocate`
	return t.names[name]
}

//demi:nonalloc
func labelConcat(hop, stage string) string {
	return hop + "." + stage // want `string concatenation allocates`
}

//demi:nonalloc
func eventsSnapshot(t *tracer) []event {
	out := make([]event, t.next) // want `make allocates`
	copy(out, t.events[:t.next])
	return out
}
