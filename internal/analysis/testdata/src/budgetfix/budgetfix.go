// Package budgetfix seeds //demi:budget violations for the cyclebudget
// analyzer tests: a budget the static cost model says the body cannot
// meet, a recursive body with no static bound, and a budget with headroom.
package budgetfix

// checksum declares a budget far below what its loop costs under the
// model: the gate trips.
//
//demi:budget=5ns deliberately impossible
func checksum(data []byte) uint32 { // want `checksum estimates \S+ worst-case, over its //demi:budget=5ns`
	var sum uint32
	for _, b := range data {
		sum = sum<<5 + sum + uint32(b)
	}
	return sum
}

// depth recurses: the model cannot bound it, so any budget is a finding.
//
//demi:budget=1us tree walks have no static bound
func depth(n int) int { // want `depth declares //demi:budget=1µs but its worst-case cost is unbounded \(recursion\)`
	if n <= 0 {
		return 0
	}
	return depth(n-1) + 1
}

// header fits comfortably inside its budget: clean.
//
//demi:budget=1ms generous on purpose
func header(dst []byte, v uint16) {
	dst[0] = byte(v >> 8)
	dst[1] = byte(v)
}

// unbudgeted functions are never checked, whatever they cost.
func unbudgeted(data []byte) uint32 {
	var sum uint32
	for i := 0; i < 1000; i++ {
		for _, b := range data {
			sum += uint32(b)
		}
	}
	return sum
}
