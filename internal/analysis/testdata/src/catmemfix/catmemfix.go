// Package catmemfix pins the catmem ownership-handoff contract for the
// ownership analyzer: a successful shared-memory Push CONSUMES the SGA
// (the popper or the queue frees it — never the pusher), a call-level
// Push error leaves ownership with the caller, and a handed-off buffer
// must not be touched after the push. The network free-after-push idiom
// exercised in ownerfix stays legal; this fixture checks the zero-copy
// side of the same rules.
package catmemfix

import (
	"demikernel/internal/core"
	"demikernel/internal/memory"
)

// shm stands in for a catmem libOS endpoint.
type shm struct{}

func (shm) Push(qd core.QDesc, sga core.SGArray) (core.QToken, error) { return 1, nil }
func (shm) Pop(qd core.QDesc) (core.QToken, error)                    { return 1, nil }
func (shm) Wait(qt core.QToken) error                                 { return nil }

// handoffOK is the catmem fast path: allocate, marshal, push, and walk
// away. No Free after a successful push — ownership moved to the popper.
func handoffOK(l shm, qd core.QDesc, h *memory.Heap, payload []byte) error {
	b := h.Alloc(len(payload))
	copy(b.Bytes(), payload)
	qt, err := l.Push(qd, core.SGA(b))
	if err != nil {
		b.Free() // call-level error: ownership never transferred
		return err
	}
	return l.Wait(qt)
}

// leakOnCallError drops the buffer on the call-level error branch. A push
// that fails before queuing hands nothing over; the caller still owns b.
func leakOnCallError(l shm, qd core.QDesc, h *memory.Heap) error {
	b := h.Alloc(64)
	qt, err := l.Push(qd, core.SGA(b)) // want `buffer "b" leaks when l.Push fails`
	if err != nil {
		return err
	}
	return l.Wait(qt)
}

// writeAfterHandoff mutates the payload after the push. Under zero-copy
// handoff the popper may already be reading the same bytes.
func writeAfterHandoff(l shm, qd core.QDesc, h *memory.Heap, seq byte) error {
	b := h.Alloc(64)
	qt, err := l.Push(qd, core.SGA(b))
	if err != nil {
		b.Free()
		return err
	}
	b.Bytes()[0] = seq // want `buffer "b" is written after being pushed`
	return l.Wait(qt)
}

// relayOK is the forwarder idiom from the service chain: a popped SGA is
// pushed onward intact. The relay never frees — the next hop's popper
// does — and the analyzer must not demand a Free here.
func relayOK(l shm, up, dn core.QDesc, sga core.SGArray) error {
	qt, err := l.Push(dn, sga)
	if err != nil {
		sga.Free()
		return err
	}
	return l.Wait(qt)
}

// stashOK parks the buffer for a later consumer (the cache stage's
// look-aside store): storing is a sanctioned ownership sink.
func stashOK(h *memory.Heap, store map[uint32]*memory.Buf, key uint32) {
	b := h.Alloc(64)
	store[key] = b
}
