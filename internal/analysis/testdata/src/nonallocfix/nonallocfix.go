// Package nonallocfix seeds //demi:nonalloc violations for the analyzer
// tests: each annotated function contains exactly the allocating constructs
// its want comments name; the *OK functions must produce no findings.
package nonallocfix

func helperAllocates() *int { return new(int) }

func cleanHelper(x int) int { return x*2 + 1 }

//demi:nonalloc
func makes() []byte {
	return make([]byte, 64) // want `make allocates`
}

//demi:nonalloc
func captures(n int) func() int {
	return func() int { return n } // want `closure captures "n" and is heap-allocated`
}

//demi:nonalloc
func staticClosureOK() func() int {
	return func() int { return 7 }
}

//demi:nonalloc
func boxes(v int) any {
	return v // want `returning non-pointer int as interface allocates`
}

//demi:nonalloc
func pointerInterfaceOK(v *int) any {
	return v
}

//demi:nonalloc
func appendBare(s []int, v int) []int {
	return append(s, v) // want `append without a capacity guard`
}

//demi:nonalloc
func appendGuardedOK(s []int, v int) []int {
	if len(s) < cap(s) {
		s = append(s, v)
	}
	return s
}

//demi:nonalloc
func concat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

//demi:nonalloc
func toBytes(s string) []byte {
	return []byte(s) // want `string<->\[\]byte conversion allocates a copy`
}

//demi:nonalloc
func callsAllocator() int {
	return *helperAllocates() // want `call to nonallocfix.helperAllocates may allocate`
}

//demi:nonalloc
func callsCleanOK(x int) int {
	return cleanHelper(cleanHelper(x)) // transitively allocation-free
}

//demi:nonalloc
func dynamic(f func()) {
	f() // want `dynamic call f`
}

//demi:nonalloc
func spawns() {
	go spin() // want `go statement allocates a goroutine`
}

func spin() {}

//demi:nonalloc
func mapWrite(m map[int]int) {
	m[1] = 2 // want `map assignment may allocate`
}
