// Package capescapefix seeds capability-escape violations for the
// capescape analyzer tests: buffers, qtokens, and tenant views stored in
// package variables, non-carrier exported fields, and escaping closures.
package capescapefix

import (
	"demikernel/internal/core"
	"demikernel/internal/memory"
	"demikernel/internal/tenant"
)

var (
	stash   *memory.Buf
	allBufs []*memory.Buf
	curView *tenant.View
)

func stashBuf(b *memory.Buf) {
	stash = b // want `buffer escapes to package-level variable "stash"; capabilities must not outlive their owner's scope`
}

func hoardBufs(b *memory.Buf) {
	allBufs = append(allBufs, b) // want `buffer escapes to package-level variable "allBufs"; capabilities must not outlive their owner's scope`
}

func pinView(v *tenant.View) {
	curView = v // want `tenant view escapes to package-level variable "curView"; capabilities must not outlive their owner's scope`
}

// Box is NOT a //demi:carrier: its exported field is API surface that
// would hand the capability to arbitrary importers.
type Box struct {
	Buf *memory.Buf
	Tok core.QToken
}

func boxField(box *Box, b *memory.Buf) {
	box.Buf = b // want `buffer escapes through exported field Box.Buf of a type not annotated //demi:carrier`
}

func boxLiteral(b *memory.Buf, qt core.QToken) Box {
	return Box{
		Buf: b,  // want `buffer escapes through exported field Box.Buf of a type not annotated //demi:carrier`
		Tok: qt, // want `qtoken escapes through exported field Box.Tok of a type not annotated //demi:carrier`
	}
}

// Record is an audited transfer record: carrying capabilities is its job.
//
//demi:carrier test fixture for the sanctioned-carrier path.
type Record struct {
	Buf *memory.Buf
}

func carrierOK(b *memory.Buf) Record {
	return Record{Buf: b}
}

// unexported fields are not API surface; rule 2 leaves them alone.
type holder struct {
	buf *memory.Buf
}

func unexportedFieldOK(h *holder, b *memory.Buf) {
	h.buf = b
}

func leakClosure(b *memory.Buf) func() {
	return func() { // want `closure returned from the function captures buffer "b", which then outlives the call that owns it`
		b.Free()
	}
}

func use(core.QToken) {}

func goClosure(qt core.QToken) {
	go func() { // want `closure launched with go captures qtoken "qt", which then outlives the call that owns it`
		use(qt)
	}()
}

// localClosureOK stays function-scoped: assigned to a local, then called.
func localClosureOK(b *memory.Buf) {
	free := func() { b.Free() }
	free()
}

// spawnArgOK hands the closure to a runner as a plain call argument — the
// normal way to give work to the scheduler — and is not flagged.
func spawnArgOK(run func(func()), b *memory.Buf) {
	run(func() { b.Free() })
}
