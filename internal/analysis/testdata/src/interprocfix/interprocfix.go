// Package interprocfix seeds cross-function ownership and redemption
// leaks that only the interprocedural engine catches: the old
// intra-function checker treats every helper call as consuming, so each
// finding here doubles as a regression test against it
// (TestInterprocRegression).
package interprocfix

import (
	"errors"

	"demikernel/internal/core"
	"demikernel/internal/memory"
)

var errSkipped = errors.New("skipped")

// lib stands in for a PDPIX libOS.
type lib struct{}

func (lib) Push(qd core.QDesc, sga core.SGArray) (core.QToken, error) { return 1, nil }
func (lib) Wait(qt core.QToken) error                                 { return nil }

// audit only reads the buffer (ParamBorrows): passing a buffer through it
// discharges nothing.
func audit(b *memory.Buf) int {
	return b.Len()
}

// retire consumes the buffer on every path (ParamConsumes).
func retire(b *memory.Buf) {
	b.Free()
}

// wrapAlloc returns a freshly-owned buffer (OwnedResults): its call sites
// are producers just like direct h.Alloc calls.
func wrapAlloc(h *memory.Heap, n int) *memory.Buf {
	return h.Alloc(n)
}

// logToken only inspects the token (ParamBorrows): it redeems nothing.
func logToken(qt core.QToken) bool {
	return qt != core.InvalidQToken
}

func leakThroughBorrower(h *memory.Heap) int {
	b := h.Alloc(64) // want `buffer "b" allocated by h.Alloc is never freed, pushed, returned, or stored`
	return audit(b)
}

func handoffOK(h *memory.Heap) {
	b := h.Alloc(64)
	retire(b)
}

func leakFromHelperResult(h *memory.Heap) int {
	b := wrapAlloc(h, 64) // want `buffer "b" allocated by wrapAlloc is never freed, pushed, returned, or stored`
	return audit(b)
}

func helperResultFreedOK(h *memory.Heap) int {
	b := wrapAlloc(h, 64)
	n := audit(b)
	b.Free()
	return n
}

func leakOnEarlyReturn(h *memory.Heap, flush bool) error {
	b := wrapAlloc(h, 32)
	if !flush {
		return errSkipped // want `buffer "b" \(allocated at line \d+\) leaks on this return path`
	}
	b.Free()
	return nil
}

func strandThroughLogger(l lib, qd core.QDesc, sga core.SGArray) {
	qt, _ := l.Push(qd, sga) // want `qtoken "qt" returned by l.Push is never redeemed: passed to logToken, which only borrows it`
	logToken(qt)
}

func redeemOK(l lib, qd core.QDesc, sga core.SGArray) error {
	qt, err := l.Push(qd, sga)
	if err != nil {
		return err
	}
	logToken(qt)
	return l.Wait(qt)
}
