// Package tenantfix seeds the multi-tenant error-path contracts for the
// analyzer tests: a quota-rejected Push is a call-level error and must
// leave buffer ownership with the caller (complete-or-error), and a
// forged-token probe that fails with ErrBadQToken consumes nothing — the
// caller's own legitimate qtokens are still outstanding and must still be
// redeemed. Each `want` comment is a regexp one of the analyzers must
// match on that line.
package tenantfix

import (
	"demikernel/internal/core"
	"demikernel/internal/memory"
)

// view stands in for a tenant.View: Push/PushTo return core.ErrTenantQuota
// when the tenant's push rate, token budget, or flow budget is exhausted,
// and Wait returns core.ErrBadQToken for tokens minted by another tenant.
type view struct{}

func (view) Push(qd core.QDesc, sga core.SGArray) (core.QToken, error)       { return 1, nil }
func (view) PushTo(core.QDesc, core.SGArray, core.Addr) (core.QToken, error) { return 1, nil }
func (view) Pop(qd core.QDesc) (core.QToken, error)                          { return 2, nil }
func (view) Wait(qt core.QToken) error                                       { return nil }

// A quota rejection surfaces as a Push error: no op was enqueued, so the
// buffer is still owned by the caller. Returning without freeing leaks it.
func leakOnQuotaReject(v view, qd core.QDesc, h *memory.Heap) error {
	b := h.Alloc(64)
	qt, err := v.Push(qd, core.SGA(b)) // want `buffer "b" leaks when v.Push fails`
	if err != nil {
		return err // ErrTenantQuota path: b is still ours and never freed
	}
	if werr := v.Wait(qt); werr != nil {
		return werr
	}
	b.Free()
	return nil
}

// The correct shape: a quota-rejected push frees (or retains) the buffer
// on the error path before surfacing the error.
func quotaRejectFreedOK(v view, qd core.QDesc, h *memory.Heap) error {
	b := h.Alloc(64)
	qt, err := v.Push(qd, core.SGA(b))
	if err != nil {
		b.Free() // complete-or-error: rejection left ownership with us
		return err
	}
	if werr := v.Wait(qt); werr != nil {
		return werr
	}
	b.Free()
	return nil
}

// Rate-limited PushTo follows the same contract on the datagram path.
func leakOnRateLimitedPushTo(v view, qd core.QDesc, h *memory.Heap, to core.Addr) {
	b := h.Alloc(64)
	if qt, err := v.PushTo(qd, core.SGA(b), to); err == nil { // want `buffer "b" leaks when v.PushTo fails`
		v.Wait(qt)
		b.Free()
	}
}

func rateLimitedPushToFreedOK(v view, qd core.QDesc, h *memory.Heap, to core.Addr) {
	b := h.Alloc(64)
	if qt, err := v.PushTo(qd, core.SGA(b), to); err == nil {
		v.Wait(qt)
		b.Free()
	} else {
		b.Free()
	}
}

// A forged-token probe fails without consuming any op. Bailing out when
// the probe is rejected abandons the caller's own live pop token: the op
// it names stays outstanding forever.
func forgedProbeAbandonsPop(v view, qd core.QDesc, forged core.QToken) {
	qt, _ := v.Pop(qd) // want `qtoken "qt" returned by v.Pop is never waited, returned, or stored`
	if v.Wait(forged) == core.ErrBadQToken {
		return // the forgery was rejected, but our real token leaks with it
	}
	_ = qt
}

// The correct shape: ErrBadQToken from a foreign token is a verdict on
// that token alone; the legitimate token must still be redeemed.
func forgedProbeGuardedOK(v view, qd core.QDesc, forged core.QToken) error {
	qt, err := v.Pop(qd)
	if err != nil {
		return err
	}
	if werr := v.Wait(forged); werr != core.ErrBadQToken && werr != nil {
		return werr
	}
	return v.Wait(qt)
}

// An attacker-style scan that mints a real op of its own and then drops
// the token while probing guesses strands its own completion.
func scanDropsOwnToken(v view, qd core.QDesc, guesses []core.QToken) {
	v.Pop(qd) // want `qtoken returned by v.Pop is dropped`
	for _, g := range guesses {
		v.Wait(g)
	}
}

func scanKeepsOwnTokenOK(v view, qd core.QDesc, guesses []core.QToken) error {
	qt, err := v.Pop(qd)
	if err != nil {
		return err
	}
	for _, g := range guesses {
		v.Wait(g)
	}
	return v.Wait(qt)
}
