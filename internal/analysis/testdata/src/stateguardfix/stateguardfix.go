// Package stateguardfix seeds complete-or-error violations for the
// stateguard analyzer tests: //demi:stateguard fields written before the
// failure checks that can still bail out with an error.
package stateguardfix

import "errors"

var errFull = errors.New("full")

// conn stands in for protocol state with guarded fields.
type conn struct {
	//demi:stateguard rcvNxt acknowledges bytes to the peer; it may only
	// advance when the delivery actually happened.
	rcvNxt uint32
	//demi:stateguard quota accounting must match reality.
	quota int

	scratch int // unguarded: mutate freely
}

func (c *conn) deliverBad(n uint32, ok bool) error {
	c.rcvNxt += n // want `guarded field "rcvNxt" \(//demi:stateguard\) is written on a path that returns a non-nil error \(return at line \d+\)`
	if !ok {
		return errFull
	}
	return nil
}

func (c *conn) deliverOK(n uint32, ok bool) error {
	if !ok {
		return errFull
	}
	c.rcvNxt += n // past the guard: every downstream exit succeeds
	return nil
}

func (c *conn) acquireBad() error {
	c.quota++ // want `guarded field "quota" \(//demi:stateguard\) is written on a path that returns a non-nil error \(return at line \d+\)`
	if c.quota > 8 {
		return errFull
	}
	return nil
}

func (c *conn) acquireOK() error {
	if c.quota >= 8 {
		return errFull
	}
	c.quota++
	return nil
}

// bump has no error result: there is no failure path to guard against.
func (c *conn) bump(n uint32) {
	c.rcvNxt += n
}

// scratchWrite mutates an unguarded field: clean wherever it happens.
func (c *conn) scratchWrite(ok bool) error {
	c.scratch++
	if !ok {
		return errFull
	}
	return nil
}

// branchOnlyBad writes the guarded field inside the same branch that goes
// on to fail: the error exit is downstream of the write.
func (c *conn) branchOnlyBad(n uint32) error {
	if n > 0 {
		c.rcvNxt += n // want `guarded field "rcvNxt" \(//demi:stateguard\) is written on a path that returns a non-nil error \(return at line \d+\)`
		if c.rcvNxt > 1<<30 {
			return errFull
		}
	}
	return nil
}

// branchSplitOK writes only on the branch whose every exit is the nil
// return; the error return is on the other branch.
func (c *conn) branchSplitOK(n uint32) error {
	if n == 0 {
		return errFull
	}
	c.rcvNxt += n
	return nil
}
