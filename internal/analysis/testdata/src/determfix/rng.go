package determfix

import "math/rand" // want `sim-world package imports math/rand`

func roll() int { return rand.Intn(6) }
