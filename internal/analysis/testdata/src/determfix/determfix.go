// Package determfix seeds determinism violations for the analyzer tests
// (run with a DeterminismConfig that includes "determfix").
package determfix

import (
	"fmt"
	"time"
)

func wallClock() int64 {
	return time.Now().UnixNano() // want `sim-world code calls time.Now`
}

func sleeps() {
	time.Sleep(time.Millisecond) // want `sim-world code calls time.Sleep`
}

func durationMathOK(a, b time.Duration) time.Duration {
	return a + b // Duration arithmetic does not read the clock
}

func dumpMap(m map[string]int) {
	for k, v := range m { // want `map iteration order feeds fmt.Println`
		fmt.Println(k, v)
	}
}

func aggregateMapOK(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v // aggregation is order-independent
	}
	return total
}
