// Package ownerfix seeds buffer-ownership violations for the analyzer
// tests: leaked allocations, leaks on early returns and push-failure
// paths, and writes through a pushed buffer.
package ownerfix

import (
	"demikernel/internal/core"
	"demikernel/internal/memory"
)

// lib stands in for a PDPIX libOS.
type lib struct{}

func (lib) Push(qd core.QDesc, sga core.SGArray) (core.QToken, error)       { return 1, nil }
func (lib) Wait(qt core.QToken) error                                       { return nil }
func (lib) PushTo(core.QDesc, core.SGArray, core.Addr) (core.QToken, error) { return 1, nil }

func leakNever(h *memory.Heap) {
	b := h.Alloc(64) // want `buffer "b" allocated by h.Alloc is never freed, pushed, returned, or stored`
	_ = b
}

func leakDropped(h *memory.Heap, data []byte) {
	memory.CopyFrom(h, data) // want `buffer allocated by memory.CopyFrom is discarded without Free`
}

func leakEarlyReturn(h *memory.Heap, bad bool) {
	b := h.Alloc(64)
	if bad {
		return // want `buffer "b" \(allocated at line \d+\) leaks on this return path`
	}
	b.Free()
}

func failedAllocGuardOK(h *memory.Heap) {
	b, err := h.TryAlloc(64)
	if err != nil {
		return // no buffer was handed out: not a leak
	}
	b.Free()
}

func leakPushError(l lib, qd core.QDesc, h *memory.Heap) error {
	b := h.Alloc(64)
	qt, err := l.Push(qd, core.SGA(b)) // want `buffer "b" leaks when l.Push fails`
	if err != nil {
		return err // the push-error rule reports this path at the push site
	}
	b.Free()
	return l.Wait(qt)
}

func pushErrorFreedOK(l lib, qd core.QDesc, h *memory.Heap) error {
	b := h.Alloc(64)
	qt, err := l.Push(qd, core.SGA(b))
	if err != nil {
		b.Free()
		return err
	}
	b.Free()
	return l.Wait(qt)
}

func leakPushErrNilForm(l lib, qd core.QDesc, h *memory.Heap, to core.Addr) {
	b := h.Alloc(64)
	if qt, err := l.PushTo(qd, core.SGA(b), to); err == nil { // want `buffer "b" leaks when l.PushTo fails`
		l.Wait(qt)
	}
}

func pushErrNilElseFreedOK(l lib, qd core.QDesc, h *memory.Heap, to core.Addr) {
	b := h.Alloc(64)
	if qt, err := l.PushTo(qd, core.SGA(b), to); err == nil {
		l.Wait(qt)
	} else {
		b.Free()
	}
}

func writeAfterPush(l lib, qd core.QDesc, h *memory.Heap, payload []byte) {
	b := h.Alloc(64)
	qt, err := l.Push(qd, core.SGA(b))
	if err != nil {
		b.Free()
		return
	}
	copy(b.Bytes(), payload) // want `buffer "b" is written after being pushed`
	l.Wait(qt)
	b.Free()
}

func marshalBeforePushOK(l lib, qd core.QDesc, h *memory.Heap, payload []byte) {
	b := h.Alloc(64)
	copy(b.Bytes(), payload)
	qt, err := l.Push(qd, core.SGA(b))
	if err != nil {
		b.Free()
		return
	}
	l.Wait(qt)
	b.Free()
}
