// Package sumfix exercises the summary engine's fixpoint directly (no
// want comments — summary_test.go asserts on the computed summaries):
// parameter-mode classification, owned-result provenance, and cost
// estimates under recursion and mutual recursion.
package sumfix

import "demikernel/internal/memory"

func blen(b *memory.Buf) int { return b.Len() }

func bfree(b *memory.Buf) { b.Free() }

func deferFree(b *memory.Buf) int {
	defer b.Free()
	return b.Len()
}

// maybeFree consumes on one unknown-class exit and leaks on the other:
// the Mixed contract.
func maybeFree(b *memory.Buf, n int) int {
	if n > 0 {
		b.Free()
		return n
	}
	return 0
}

func wrapAlloc(h *memory.Heap, n int) *memory.Buf { return h.Alloc(n) }

// rewrap launders the allocation through a local and a second return —
// owned-result provenance must follow both.
func rewrap(h *memory.Heap, n int) *memory.Buf {
	b := wrapAlloc(h, n)
	return b
}

// passthrough returns its argument: no fresh ownership in the result.
func passthrough(b *memory.Buf) *memory.Buf { return b }

func rec(n int) int {
	if n <= 0 {
		return 0
	}
	return rec(n-1) + 1
}

func even(n int) bool {
	if n == 0 {
		return true
	}
	return odd(n - 1)
}

func odd(n int) bool {
	if n == 0 {
		return false
	}
	return even(n - 1)
}

// pingFree/pongFree consume the buffer through mutual recursion: the
// fixpoint must converge with both summarized as consuming.
func pingFree(b *memory.Buf, n int) {
	if n <= 0 {
		b.Free()
		return
	}
	pongFree(b, n-1)
}

func pongFree(b *memory.Buf, n int) {
	pingFree(b, n-1)
}

func straight(x int) int {
	y := x * 2
	return y + 1
}
