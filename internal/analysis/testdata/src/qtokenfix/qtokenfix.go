// Package qtokenfix seeds qtoken-discipline violations for the analyzer
// tests. Each `want` comment is a regexp the qtoken analyzer must match on
// that line.
package qtokenfix

import "demikernel/internal/core"

// push stands in for a PDPIX libcall minting a qtoken.
func push() (core.QToken, error) { return 1, nil }

func wait(core.QToken) {}

func dropped() {
	push() // want `qtoken returned by push is dropped`
}

func blank() {
	_, _ = push() // want `assigned to _ and never redeemed`
}

func unused() {
	qt, _ := push() // want `qtoken "qt" returned by push is never waited, returned, or stored`
	_ = qt
}

func waited() {
	qt, _ := push()
	wait(qt)
}

func returned() (core.QToken, error) {
	return push()
}

func stored(sink *core.QToken) {
	qt, _ := push()
	*sink = qt
}

func kept(pending []core.QToken) []core.QToken {
	qt, _ := push()
	return append(pending, qt)
}

func guarded() {
	if qt, err := push(); err == nil {
		wait(qt)
	}
}
