package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// cfg_test.go unit-tests BuildCFG's shapes directly on parsed (untyped)
// function bodies: branches, loops, defers, gotos, switch fallthrough,
// and path termination.

// cfgOf parses one function declaration and builds its CFG.
func cfgOf(t *testing.T, fnSrc string) (*CFG, *ast.FuncDecl) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "cfg_test_src.go", "package p\n\n"+fnSrc, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := file.Decls[0].(*ast.FuncDecl)
	return BuildCFG(fd.Body), fd
}

// findNode returns the first node under root matching pred.
func findNode(t *testing.T, root ast.Node, what string, pred func(ast.Node) bool) ast.Node {
	t.Helper()
	var found ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if found == nil && n != nil && pred(n) {
			found = n
		}
		return found == nil
	})
	if found == nil {
		t.Fatalf("no %s in test function", what)
	}
	return found
}

// reachable reports whether to can be reached from from by following at
// least one edge.
func reachable(from, to *Block) bool {
	seen := make(map[*Block]bool)
	var walk func(b *Block) bool
	walk = func(b *Block) bool {
		for _, s := range b.Succs {
			if s == to {
				return true
			}
			if !seen[s] {
				seen[s] = true
				if walk(s) {
					return true
				}
			}
		}
		return false
	}
	return walk(from)
}

// predCount counts in-edges of b across the graph.
func predCount(g *CFG, b *Block) int {
	n := 0
	for _, blk := range g.Blocks {
		for _, s := range blk.Succs {
			if s == b {
				n++
			}
		}
	}
	return n
}

func TestCFGBranch(t *testing.T) {
	g, fd := cfgOf(t, `func f(n int) int {
	if n > 0 {
		n++
	} else {
		n--
	}
	return n
}`)
	inc := findNode(t, fd.Body, "n++", func(n ast.Node) bool {
		s, ok := n.(*ast.IncDecStmt)
		return ok && s.Tok == token.INC
	})
	dec := findNode(t, fd.Body, "n--", func(n ast.Node) bool {
		s, ok := n.(*ast.IncDecStmt)
		return ok && s.Tok == token.DEC
	})
	thenBlk, _ := g.Lookup(inc)
	elseBlk, _ := g.Lookup(dec)
	if thenBlk == nil || elseBlk == nil {
		t.Fatal("branch arms not in the CFG")
	}
	cond := g.Entry
	if cond.Cond == nil || len(cond.Succs) != 2 {
		t.Fatalf("entry block: Cond=%v, %d succs; want a two-way conditional", cond.Cond, len(cond.Succs))
	}
	if cond.Succs[0] != thenBlk {
		t.Error("Succs[0] is not the true (then) edge")
	}
	if cond.Succs[1] != elseBlk {
		t.Error("Succs[1] is not the false (else) edge")
	}
	ret := findNode(t, fd.Body, "return", func(n ast.Node) bool {
		_, ok := n.(*ast.ReturnStmt)
		return ok
	})
	retBlk, _ := g.Lookup(ret)
	if retBlk == nil || retBlk.Return == nil {
		t.Fatal("return block missing or unmarked")
	}
	if len(retBlk.Succs) != 0 {
		t.Errorf("return block has %d succs, want 0", len(retBlk.Succs))
	}
	if !reachable(thenBlk, retBlk) || !reachable(elseBlk, retBlk) {
		t.Error("both branch arms must rejoin at the return")
	}
}

func TestCFGLoop(t *testing.T) {
	g, fd := cfgOf(t, `func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}`)
	var header *Block
	for _, b := range g.Blocks {
		if b.Cond != nil {
			header = b
		}
	}
	if header == nil {
		t.Fatal("no loop-header block with a condition")
	}
	if !reachable(header, header) {
		t.Error("loop header has no back edge (body -> post -> header cycle missing)")
	}
	ret := findNode(t, fd.Body, "return", func(n ast.Node) bool {
		_, ok := n.(*ast.ReturnStmt)
		return ok
	})
	retBlk, _ := g.Lookup(ret)
	if len(header.Succs) != 2 || !reachable(header, retBlk) {
		t.Error("loop exit (false edge) does not lead to the return")
	}
	body := findNode(t, fd.Body, "s += i", func(n ast.Node) bool {
		a, ok := n.(*ast.AssignStmt)
		return ok && a.Tok == token.ADD_ASSIGN
	})
	bodyBlk, _ := g.Lookup(body)
	if bodyBlk == nil {
		t.Fatal("loop body not in the CFG")
	}
	if header.Succs[0] != bodyBlk {
		t.Error("Succs[0] of the loop header is not the body (true edge)")
	}
}

func TestCFGDefer(t *testing.T) {
	g, fd := cfgOf(t, `func f(b fakeBuf) int {
	defer b.Free()
	return b.Len()
}`)
	if len(g.Defers) != 1 {
		t.Fatalf("got %d defers, want 1", len(g.Defers))
	}
	def := findNode(t, fd.Body, "defer", func(n ast.Node) bool {
		_, ok := n.(*ast.DeferStmt)
		return ok
	})
	if blk, _ := g.Lookup(def); blk != nil {
		t.Error("defer statement appended to a block; it must live only in Defers (it runs at every exit)")
	}
}

func TestCFGGoto(t *testing.T) {
	g, fd := cfgOf(t, `func f(n int) {
	if n == 0 {
		goto done
	}
	n++
done:
	n--
}`)
	dec := findNode(t, fd.Body, "n--", func(n ast.Node) bool {
		s, ok := n.(*ast.IncDecStmt)
		return ok && s.Tok == token.DEC
	})
	target, _ := g.Lookup(dec)
	if target == nil {
		t.Fatal("goto target statement not in the CFG")
	}
	// The labeled block is entered both by the forward goto and by the
	// fallthrough from n++.
	if got := predCount(g, target); got < 2 {
		t.Errorf("goto target has %d in-edges, want >= 2 (goto + fallthrough)", got)
	}
	inc := findNode(t, fd.Body, "n++", func(n ast.Node) bool {
		s, ok := n.(*ast.IncDecStmt)
		return ok && s.Tok == token.INC
	})
	incBlk, _ := g.Lookup(inc)
	if !reachable(incBlk, target) {
		t.Error("fallthrough path does not reach the labeled block")
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	g, fd := cfgOf(t, `func f(n int) int {
	switch n {
	case 0:
		n++
		fallthrough
	case 1:
		n += 2
	default:
		n = 9
	}
	return n
}`)
	inc := findNode(t, fd.Body, "n++", func(n ast.Node) bool {
		s, ok := n.(*ast.IncDecStmt)
		return ok && s.Tok == token.INC
	})
	add := findNode(t, fd.Body, "n += 2", func(n ast.Node) bool {
		a, ok := n.(*ast.AssignStmt)
		return ok && a.Tok == token.ADD_ASSIGN
	})
	case0, _ := g.Lookup(inc)
	case1, _ := g.Lookup(add)
	if case0 == nil || case1 == nil {
		t.Fatal("case bodies not in the CFG")
	}
	direct := false
	for _, s := range case0.Succs {
		if s == case1 {
			direct = true
		}
	}
	if !direct {
		t.Error("fallthrough does not edge case 0 directly into case 1")
	}
}

func TestCFGPanicTerminates(t *testing.T) {
	g, fd := cfgOf(t, `func f(n int) int {
	if n < 0 {
		panic("neg")
	}
	return n
}`)
	pn := findNode(t, fd.Body, "panic", func(n ast.Node) bool {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return false
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "panic"
	})
	blk, _ := g.Lookup(pn)
	if blk == nil {
		t.Fatal("panic statement not in the CFG")
	}
	if !blk.Panics {
		t.Error("panic block not marked Panics")
	}
	if len(blk.Succs) != 0 {
		t.Errorf("panic block has %d succs, want 0 (the path terminates)", len(blk.Succs))
	}
}

func TestCFGFuncLitOpaque(t *testing.T) {
	g, fd := cfgOf(t, `func f() int {
	a := 1
	g := func() int {
		b := 2
		return b
	}
	return a + g()
}`)
	outer := findNode(t, fd.Body, "a := 1", func(n ast.Node) bool {
		a, ok := n.(*ast.AssignStmt)
		return ok && a.Tok == token.DEFINE && a.Pos() == fd.Body.List[0].Pos()
	})
	if blk, idx := g.Lookup(outer); blk == nil || idx != 0 {
		t.Errorf("Lookup(first stmt) = (%v, %d), want (entry, 0)", blk, idx)
	}
	inner := findNode(t, fd.Body, "b := 2", func(n ast.Node) bool {
		a, ok := n.(*ast.AssignStmt)
		return ok && a.Tok == token.DEFINE && a.Pos() != fd.Body.List[0].Pos() && a.Pos() != fd.Body.List[1].Pos()
	})
	if blk, _ := g.Lookup(inner); blk != nil {
		t.Error("statement inside a nested FuncLit appears in the outer CFG; closures must get their own graphs")
	}
}
