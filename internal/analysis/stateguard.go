package analysis

import (
	"go/ast"
	"go/types"
)

// StateguardAnalyzer enforces complete-or-error mutation discipline on
// struct fields annotated //demi:stateguard: protocol state that must only
// advance when the operation it records actually happened (TCP rcvNxt,
// tenant quota counters). A write to a guarded field on any path that goes
// on to return a non-nil error means a failed operation mutated state it
// had no right to touch — the bug class behind sequence-number
// desynchronization and quota leaks.
//
// The check is path-sensitive over the CFG: the write is a violation only
// if an error-class exit (exitClassesOf) is reachable from it. Writes in
// functions with no error (or trailing bool) result are always clean —
// there is no failure path to guard against.
func StateguardAnalyzer() *Analyzer {
	a := &Analyzer{
		Name: "stateguard",
		Doc:  "//demi:stateguard fields may not be written on paths that return a non-nil error",
	}
	a.Run = func(p *Pass) { runStateguard(p) }
	return a
}

const stateguardHint = "complete the operation before mutating guarded state, or roll the write back on the error path"

func runStateguard(p *Pass) {
	if !p.Mod.HasGuardedFields() {
		return
	}
	info := p.Pkg.Info
	for _, file := range p.Pkg.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			classes := p.Mod.exitClassesOf(p.Pkg, fd)
			hasErrorExit := false
			for _, c := range classes {
				if c == exitError {
					hasErrorExit = true
					break
				}
			}
			if !hasErrorExit {
				continue // nothing to guard against on this function's exits
			}
			g := p.Mod.bodyCFG(fd.Body)
			checkGuardedWrites(p, fd, g, classes, info)
		}
	}
}

// checkGuardedWrites walks fd's body (closures excluded — they return on
// their own signatures) for writes to guarded fields and tests whether an
// error-class exit is reachable from each.
func checkGuardedWrites(p *Pass, fd *ast.FuncDecl, g *CFG, classes map[*ast.ReturnStmt]exitClass, info *types.Info) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		var targets []ast.Expr
		switch x := n.(type) {
		case *ast.AssignStmt:
			targets = x.Lhs
		case *ast.IncDecStmt:
			targets = []ast.Expr{x.X}
		default:
			return true
		}
		for _, lhs := range targets {
			fv := guardedFieldOf(info, p.Mod, lhs)
			if fv == nil {
				continue
			}
			reportGuardedWrite(p, g, classes, n, lhs, fv)
		}
		return true
	})
}

// guardedFieldOf resolves lhs to a //demi:stateguard field variable, or nil.
func guardedFieldOf(info *types.Info, m *Module, lhs ast.Expr) *types.Var {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	var fv *types.Var
	if s, ok := info.Selections[sel]; ok {
		fv, _ = s.Obj().(*types.Var)
	} else if v, ok := info.Uses[sel.Sel].(*types.Var); ok {
		fv = v
	}
	if fv == nil || !m.IsGuardedField(fv) {
		return nil
	}
	return fv
}

// reportGuardedWrite flags the write if an error-class return is reachable
// downstream of it in the CFG.
func reportGuardedWrite(p *Pass, g *CFG, classes map[*ast.ReturnStmt]exitClass, write ast.Node, lhs ast.Expr, fv *types.Var) {
	blk, idx := g.Lookup(write)
	if blk == nil {
		blk, idx = lookupEnclosing(g, write)
	}
	if blk == nil {
		return
	}
	// An empty consumed set makes leakyExits enumerate every normal exit
	// reachable from the statement after the write.
	exits, _ := leakyExits(g, blk, idx+1, nil, nil)
	for _, ret := range exits {
		if classes[ret] != exitError {
			continue
		}
		p.Reportf(lhs.Pos(), stateguardHint,
			"guarded field %q (//demi:stateguard) is written on a path that returns a non-nil error (return at line %d)",
			fv.Name(), p.Mod.Fset.Position(ret.Pos()).Line)
		return // one report per write, citing the first offending exit
	}
}
