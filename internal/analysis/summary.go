package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"
)

// summary.go is the interprocedural half of the engine: a fixpoint over the
// module call graph computing, per function, (1) how each tracked parameter
// (*memory.Buf, core.QToken) is treated — borrowed, always consumed,
// consumed only on success, or inconsistently consumed across paths; (2)
// whether results carry a freshly-owned tracked value, making the
// function's call sites producers; (3) poll-discipline facts (channel
// operations, mutex acquisition, go statements, unbounded loops) closed
// over static calls; and (4) a costmodel-weighted worst-case cycle
// estimate for the //demi:budget gate. All four are memoized recursive
// solutions over finite lattices; cycles resolve to documented defaults
// (parameters: consumes, like the intra-procedural analyzer assumed;
// flags: clean; cost: unbounded, because recursion has no static bound).

// ParamMode says how a callee treats a tracked parameter.
type ParamMode int8

const (
	// ParamUntracked: the parameter does not carry a tracked type (or the
	// callee is outside the module and has no summary).
	ParamUntracked ParamMode = iota
	// ParamBorrows: no path through the callee consumes the value; the
	// caller still owns it after the call.
	ParamBorrows
	// ParamConsumes: every path consumes the value (frees, transfers,
	// stores, or returns it); the caller is discharged unconditionally.
	ParamConsumes
	// ParamConsumesOnSuccess: success-class exits always consume; error
	// exits leave ownership with the caller — the Push contract. The
	// caller must discharge the value on the callee's error path.
	ParamConsumesOnSuccess
	// ParamMixed: some same-class exit paths consume and others leak.
	// This is a bug in the callee; its declaring package gets a finding.
	ParamMixed
)

func (m ParamMode) String() string {
	switch m {
	case ParamBorrows:
		return "borrows"
	case ParamConsumes:
		return "consumes"
	case ParamConsumesOnSuccess:
		return "consumes-on-success"
	case ParamMixed:
		return "mixed"
	}
	return "untracked"
}

// trackKind selects which tracked value family a summary speaks about.
type trackKind int8

const (
	trackBuf trackKind = iota
	trackQTok
	numTrackKinds
)

// An offense records where a poll-discipline violation enters a function:
// directly (Via == nil) or through a call to Via.
type offense struct {
	Pos token.Pos
	Via *types.Func
}

func (o offense) found() bool { return o.Pos != token.NoPos && o.Pos != 0 }

// pollFacts are the transitively-closed poll-discipline facts.
type pollFacts struct {
	Chan offense // channel send/receive/range, select
	Lock offense // sync.Mutex/RWMutex acquisition
	Go   offense // go statement
	Loop offense // unbounded for{} with no exit
}

// Cost is a worst-case cycle estimate in nanoseconds. CostUnbounded marks
// recursion, which has no static bound.
type Cost int64

const CostUnbounded Cost = -1

func (c Cost) Duration() time.Duration { return time.Duration(c) }

// addCost saturates on unboundedness.
func addCost(a, b Cost) Cost {
	if a == CostUnbounded || b == CostUnbounded {
		return CostUnbounded
	}
	return a + b
}

func maxCost(a, b Cost) Cost {
	if a == CostUnbounded || b == CostUnbounded {
		return CostUnbounded
	}
	if a > b {
		return a
	}
	return b
}

func mulCost(a Cost, k int64) Cost {
	if a == CostUnbounded {
		return CostUnbounded
	}
	return a * Cost(k)
}

// The static cost model, in model-nanoseconds. The absolute values are
// coarse (DESIGN.md §13); what the //demi:budget gate needs is a metric
// that is deterministic, monotone in code growth, and roughly proportional
// to dynamic cost — growth past a budget is the regression signal.
const (
	costStmt     Cost = 1   // any statement
	costCall     Cost = 2   // call entry/exit overhead, on top of the callee
	costStdlib   Cost = 5   // audited allocation-free stdlib call
	costExtern   Cost = 25  // unresolved, external, or interface call
	costAlloc    Cost = 100 // heap allocation (make/new/literal/box/append)
	costChanOp   Cost = 50  // channel operation or lock
	costMemOp    Cost = 30  // copy / string conversion
	costGo       Cost = 400 // goroutine spawn
	costLoopIter      = 16  // assumed worst-case trip count of a loop
)

// paramInfo is one tracked parameter's summary.
type paramInfo struct {
	Mode ParamMode
	// Leaks are the exits that make a Mixed parameter mixed: same-class
	// exit paths that can be reached without consuming the value.
	Leaks []*ast.ReturnStmt
	// FallsOff marks a consume-free path to the end of a function body
	// (implicit return) for a Mixed parameter.
	FallsOff bool
}

// A FuncSummary aggregates everything the engine knows about one function.
type FuncSummary struct {
	Params       map[int]*paramInfo // tracked signature params by index
	ReturnsOwned [numTrackKinds]bool
	Facts        pollFacts
	Cost         Cost
}

// summaries is the engine state hung off the Module. All maps are written
// only during Precompute (single-goroutine); afterwards frozen is set and
// the memo accessors compute cache misses without writing, so parallel
// per-package analysis passes need no locking here.
type summaries struct {
	trackedNamed [numTrackKinds]*types.Named
	frozen       bool

	params  map[*types.Func]map[int]*paramInfo
	inParam map[*types.Func]bool
	owned   map[*types.Func]*[numTrackKinds]bool
	inOwned map[*types.Func]bool
	facts   map[*types.Func]*pollFacts
	inFacts map[*types.Func]bool
	cost    map[*types.Func]Cost
	inCost  map[*types.Func]bool

	exitClasses map[*ast.FuncDecl]map[*ast.ReturnStmt]exitClass
	cfgs        map[*ast.BlockStmt]*CFG

	// Annotation indexes (see annot.go): //demi:stateguard fields,
	// //demi:budget functions, //demi:carrier types.
	guarded      map[*types.Var]bool
	budgets      map[*types.Func]Cost
	carriers     map[*types.TypeName]bool
	annotIndexed int // number of packages already annotation-scanned
}

func (m *Module) summaryState() *summaries {
	if m.sums == nil {
		m.sums = &summaries{
			params:      make(map[*types.Func]map[int]*paramInfo),
			inParam:     make(map[*types.Func]bool),
			owned:       make(map[*types.Func]*[numTrackKinds]bool),
			inOwned:     make(map[*types.Func]bool),
			facts:       make(map[*types.Func]*pollFacts),
			inFacts:     make(map[*types.Func]bool),
			cost:        make(map[*types.Func]Cost),
			inCost:      make(map[*types.Func]bool),
			exitClasses: make(map[*ast.FuncDecl]map[*ast.ReturnStmt]exitClass),
			cfgs:        make(map[*ast.BlockStmt]*CFG),
			guarded:     make(map[*types.Var]bool),
			budgets:     make(map[*types.Func]Cost),
			carriers:    make(map[*types.TypeName]bool),
		}
		m.sums.trackedNamed[trackBuf] = m.LookupNamed("internal/memory", "Buf")
		m.sums.trackedNamed[trackQTok] = m.LookupNamed("internal/core", "QToken")
	}
	return m.sums
}

// trackedKind classifies a type as one of the tracked families: *memory.Buf
// or core.QToken. It returns (kind, true) on a match.
func (s *summaries) trackedKind(t types.Type) (trackKind, bool) {
	if t == nil {
		return 0, false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		if n, ok := ptr.Elem().(*types.Named); ok && s.trackedNamed[trackBuf] != nil && n.Obj() == s.trackedNamed[trackBuf].Obj() {
			return trackBuf, true
		}
		return 0, false
	}
	if n, ok := t.(*types.Named); ok && s.trackedNamed[trackQTok] != nil && n.Obj() == s.trackedNamed[trackQTok].Obj() {
		return trackQTok, true
	}
	return 0, false
}

// consumingMethodFor returns the method hook for a tracked kind: Buf.Free
// discharges a buffer; qtokens have no consuming methods.
func consumingMethodFor(k trackKind) func(string) bool {
	if k == trackBuf {
		return bufConsumingMethod
	}
	return nil
}

// Precompute builds every summary the analyzers read: the cross-package
// index, annotation index, parameter modes, owned-result and poll facts,
// cost estimates, CFGs, exit classes, and allocation summaries. It runs
// single-threaded; afterwards the memo maps are frozen, so the parallel
// per-package analysis phase only reads them (cache misses — external
// functions, nested function literals — are recomputed without caching).
func (m *Module) Precompute() {
	m.index()
	m.annotIndex()
	s := m.summaryState()
	s.frozen = false
	for fn, fd := range m.decls {
		m.ParamModes(fn)
		m.OwnedResults(fn)
		m.PollFacts(fn)
		m.CostEstimate(fn)
		if fd.Body == nil {
			continue
		}
		m.bodyCFG(fd.Body)
		m.exitClassesOf(m.declPkg[fn], fd)
		if m.nonalloc[fn] {
			// Walk the annotated body in summary mode: this visits exactly
			// the calls the analysis phase will re-resolve, warming the
			// transitive allocation memo for stdlib and module callees.
			c := &nonallocChecker{m: m, pkg: m.declPkg[fn]}
			c.checkDecl(fd)
		} else {
			m.allocates(fn)
		}
	}
	s.frozen = true
}

// ParamModes returns the tracked-parameter summaries of fn (nil when fn has
// none or was not declared in the module).
func (m *Module) ParamModes(fn *types.Func) map[int]*paramInfo {
	m.index()
	s := m.summaryState()
	if pm, ok := s.params[fn]; ok {
		return pm
	}
	fd := m.decls[fn]
	if fd == nil || fd.Body == nil {
		return nil // external: no summary, and nothing worth caching
	}
	if s.inParam[fn] {
		return nil // recursion: callers fall back to the consuming default
	}
	s.inParam[fn] = true
	defer delete(s.inParam, fn)

	sig := fn.Type().(*types.Signature)
	var pm map[int]*paramInfo
	for i := 0; i < sig.Params().Len(); i++ {
		pv := sig.Params().At(i)
		kind, ok := s.trackedKind(pv.Type())
		if !ok || pv.Name() == "" || pv.Name() == "_" {
			continue
		}
		info := m.analyzeParam(fn, fd, pv, kind)
		if info == nil {
			continue
		}
		if pm == nil {
			pm = make(map[int]*paramInfo)
		}
		pm[i] = info
	}
	if !s.frozen {
		s.params[fn] = pm
	}
	return pm
}

// analyzeParam computes one parameter's mode by classifying its uses and
// walking the CFG: which exit classes are reachable without a consuming
// use?
func (m *Module) analyzeParam(fn *types.Func, fd *ast.FuncDecl, pv *types.Var, kind trackKind) *paramInfo {
	pkg := m.declPkg[fn]
	if pkg == nil {
		return nil
	}
	// The allocator manipulates its own slots by design.
	if kind == trackBuf && strings.HasSuffix(pkg.Path, "internal/memory") {
		return nil
	}
	uses := m.adjustedUses(pkg, fd.Body, pv, kind)
	consumed := consumingPositions(uses)
	if len(consumed) == 0 {
		return &paramInfo{Mode: ParamBorrows}
	}
	g := m.bodyCFG(fd.Body)
	if deferConsumes(pkg.Info, g, pv, kind, m) {
		return &paramInfo{Mode: ParamConsumes}
	}
	classes := m.exitClassesOf(pkg, fd)
	leaks, fallsOff := leakyExits(g, g.Entry, 0, consumed, nil)

	var successLeaks []*ast.ReturnStmt
	errLeak := false
	for _, ret := range leaks {
		switch classes[ret] {
		case exitError:
			errLeak = true
		default: // success and unknown exits must consume
			successLeaks = append(successLeaks, ret)
		}
	}
	switch {
	case len(successLeaks) == 0 && !fallsOff && !errLeak:
		return &paramInfo{Mode: ParamConsumes}
	case len(successLeaks) == 0 && !fallsOff:
		return &paramInfo{Mode: ParamConsumesOnSuccess}
	default:
		return &paramInfo{Mode: ParamMixed, Leaks: successLeaks, FallsOff: fallsOff}
	}
}

// ParamModeAt resolves the mode of the callee parameter an argument flows
// into, with the intra-procedural default (consumes) for everything the
// engine cannot see: external code, interface methods, variadic tails,
// recursion in progress.
func (m *Module) ParamModeAt(pkg *Package, call *ast.CallExpr, argIndex int) (ParamMode, *types.Func) {
	if argIndex < 0 {
		return ParamConsumes, nil
	}
	fn := staticCallee(pkg.Info, call)
	if fn == nil {
		return ParamConsumes, nil
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil && types.IsInterface(recv.Type()) {
		return ParamConsumes, fn
	}
	sig := fn.Type().(*types.Signature)
	if sig.Variadic() && argIndex >= sig.Params().Len()-1 {
		return ParamConsumes, fn
	}
	pm := m.ParamModes(fn)
	if pm == nil {
		return ParamConsumes, fn
	}
	info, ok := pm[argIndex]
	if !ok {
		return ParamConsumes, fn
	}
	return info.Mode, fn
}

// sacredConsumers are callee names that consume a tracked argument by
// PDPIX contract regardless of what their bodies look like: Wait redeems a
// qtoken even though its implementation only reads the token's bits, and
// Push/PushTo transfer a buffer (their error-branch semantics are enforced
// separately by the push rule).
var sacredConsumers = [numTrackKinds]map[string]bool{
	trackBuf:  {"Push": true, "PushTo": true},
	trackQTok: {"Wait": true, "WaitAny": true, "WaitAll": true, "TryTake": true},
}

// calleeName returns the syntactic name a call is made under.
func calleeName(call *ast.CallExpr) string {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}

// resultsCarry reports whether callee's results include a value of the
// tracked kind: such callees are transformers (tagQT, untagQT) — the
// tracked value's identity continues through the result, which is itself
// tracked at the call site, so the argument counts as consumed even when
// the callee's body only reads it.
func (m *Module) resultsCarry(callee *types.Func, kind trackKind) bool {
	if callee == nil {
		return false
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return false
	}
	s := m.summaryState()
	for i := 0; i < sig.Results().Len(); i++ {
		if k, ok := s.trackedKind(sig.Results().At(i).Type()); ok && k == kind {
			return true
		}
	}
	return false
}

// adjustedUses classifies every use of obj, then re-resolves consuming
// call-argument uses against the callee's parameter summary: an argument
// passed to a borrowing callee is not consumed. Redemption/transfer API
// calls (sacredConsumers) always consume.
func (m *Module) adjustedUses(pkg *Package, body ast.Node, obj types.Object, kind trackKind) []objUse {
	uses := collectUses(pkg.Info, body, obj, consumingMethodFor(kind))
	for i := range uses {
		u := &uses[i]
		if !u.consuming || u.call == nil {
			continue
		}
		if sacredConsumers[kind][calleeName(u.call)] {
			continue
		}
		mode, callee := m.ParamModeAt(pkg, u.call, u.argIndex)
		if mode == ParamBorrows && !m.resultsCarry(callee, kind) {
			u.consuming = false
			u.borrowed = true
			if callee != nil {
				u.how = "passed to " + callee.Name() + ", which only borrows it"
			}
		}
	}
	return uses
}

// consumingPositions flattens consuming uses into a position set for the
// CFG walk.
func consumingPositions(uses []objUse) map[token.Pos]bool {
	out := make(map[token.Pos]bool)
	for _, u := range uses {
		if u.consuming {
			out[u.id.Pos()] = true
		}
	}
	return out
}

// deferConsumes reports whether any deferred statement consumes obj —
// defers run at every exit, discharging the obligation on all paths.
func deferConsumes(info *types.Info, g *CFG, obj types.Object, kind trackKind, m *Module) bool {
	for _, d := range g.Defers {
		for _, u := range collectUses(info, d, obj, consumingMethodFor(kind)) {
			if u.consuming {
				return true
			}
		}
	}
	return false
}

// bodyCFG memoizes CFG construction per function body.
func (m *Module) bodyCFG(body *ast.BlockStmt) *CFG {
	s := m.summaryState()
	if g, ok := s.cfgs[body]; ok {
		return g
	}
	g := BuildCFG(body)
	if !s.frozen {
		s.cfgs[body] = g
	}
	return g
}

// An exitClass says which contract class a return statement belongs to.
type exitClass int8

const (
	exitUnknown exitClass = iota // cannot tell statically: treated like success
	exitSuccess                  // error result is nil (or bool result is true)
	exitError                    // error result provably non-nil (or bool result false)
)

// exitClassesOf classifies every return statement of fd by its error (or,
// failing that, trailing bool) result:
//
//   - a nil error literal is a success exit;
//   - a non-nil sentinel (package-level error var), an error-constructor
//     call (errors.New, fmt.Errorf), or an error-typed identifier returned
//     under its own `!= nil` guard is an error exit;
//   - anything else (e.g. `return w.Wait(qt)`) is unknown, and unknown
//     exits are held to the success contract.
//
// Functions with no error result but a trailing bool result follow the
// try-idiom: `return true` is success, `return false` is the failure exit.
func (m *Module) exitClassesOf(pkg *Package, fd *ast.FuncDecl) map[*ast.ReturnStmt]exitClass {
	s := m.summaryState()
	if c, ok := s.exitClasses[fd]; ok {
		return c
	}
	classes := make(map[*ast.ReturnStmt]exitClass)
	if !s.frozen {
		s.exitClasses[fd] = classes
	}

	fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
	if fn == nil {
		return classes
	}
	res := fn.Type().(*types.Signature).Results()
	errIdx, boolIdx := -1, -1
	for i := 0; i < res.Len(); i++ {
		if isErrorType(res.At(i).Type()) {
			errIdx = i
		} else if b, ok := res.At(i).Type().Underlying().(*types.Basic); ok && b.Kind() == types.Bool {
			boolIdx = i
		}
	}
	if errIdx < 0 && boolIdx < 0 {
		return classes // every return is success-class (the zero map value is unknown; absent = success below)
	}
	walkStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		classes[ret] = classifyReturn(pkg.Info, ret, stack, errIdx, boolIdx)
		return true
	})
	return classes
}

func classifyReturn(info *types.Info, ret *ast.ReturnStmt, stack []ast.Node, errIdx, boolIdx int) exitClass {
	if errIdx >= 0 {
		if errIdx >= len(ret.Results) {
			return exitUnknown // bare return with named results
		}
		e := ast.Unparen(ret.Results[errIdx])
		switch x := e.(type) {
		case *ast.Ident:
			if x.Name == "nil" {
				return exitSuccess
			}
			obj := info.Uses[x]
			if obj == nil {
				return exitUnknown
			}
			if v, ok := obj.(*types.Var); ok && v.Parent() == v.Pkg().Scope() {
				return exitError // package-level sentinel (ErrFoo)
			}
			// `return err` under its own non-nil guard.
			for i := len(stack) - 1; i >= 0; i-- {
				if ifs, ok := stack[i].(*ast.IfStmt); ok {
					if op, condObj := condErrorTest(info, ifs.Cond); condObj == obj && op == token.NEQ {
						return exitError
					}
				}
			}
			return exitUnknown
		case *ast.SelectorExpr:
			if obj := info.Uses[x.Sel]; obj != nil {
				if v, ok := obj.(*types.Var); ok && v.Parent() == v.Pkg().Scope() {
					return exitError // qualified sentinel (core.ErrTenantQuota)
				}
			}
			return exitUnknown
		case *ast.CallExpr:
			if fn := staticCallee(info, x); fn != nil && fn.Pkg() != nil {
				p, n := fn.Pkg().Path(), fn.Name()
				if (p == "errors" && n == "New") || (p == "fmt" && n == "Errorf") {
					return exitError
				}
			}
			return exitUnknown
		}
		return exitUnknown
	}
	// try-idiom: trailing bool result.
	if boolIdx < len(ret.Results) {
		if id, ok := ast.Unparen(ret.Results[boolIdx]).(*ast.Ident); ok {
			switch id.Name {
			case "true":
				return exitSuccess
			case "false":
				return exitError
			}
		}
	}
	return exitUnknown
}

// leakyExits walks the CFG from (start, idx) along paths containing no
// consuming use, returning every return statement such a path can reach
// plus whether one falls off the end of the body. prune, when non-nil,
// drops condition edges that are infeasible for the value being tracked
// (e.g. the allocation-failed branch). Paths ending in panic report
// nothing: they never reach a normal exit.
func leakyExits(g *CFG, start *Block, idx int, consumed map[token.Pos]bool, prune func(cond ast.Expr, trueEdge bool) bool) ([]*ast.ReturnStmt, bool) {
	var leaks []*ast.ReturnStmt
	fellOff := false
	seen := make(map[*Block]bool)
	reported := make(map[*ast.ReturnStmt]bool)

	var walk func(b *Block, from int)
	walk = func(b *Block, from int) {
		if from == 0 {
			if seen[b] {
				return
			}
			seen[b] = true
		}
		for i := from; i < len(b.Nodes); i++ {
			if nodeConsumes(b.Nodes[i], consumed) {
				return // obligation discharged on this path
			}
		}
		if b.Panics {
			return
		}
		if b.Return != nil {
			if !reported[b.Return] {
				reported[b.Return] = true
				leaks = append(leaks, b.Return)
			}
			return
		}
		if len(b.Succs) == 0 {
			fellOff = true
			return
		}
		for i, succ := range b.Succs {
			if b.Cond != nil && prune != nil && i < 2 && prune(b.Cond, i == 0) {
				continue
			}
			walk(succ, 0)
		}
	}
	walk(start, idx)
	return leaks, fellOff
}

// nodeConsumes reports whether the node's source range covers a consuming
// use position.
func nodeConsumes(n ast.Node, consumed map[token.Pos]bool) bool {
	for pos := range consumed {
		if n.Pos() <= pos && pos < n.End() {
			return true
		}
	}
	return false
}

// OwnedResults reports, per tracked kind, whether fn's call sites receive a
// freshly-owned value: some return path hands back the result of an
// allocator (or of another owned-returning function), possibly through a
// local. Accessors returning stored values stay un-owned, so pop-queue
// getters do not create false producers.
func (m *Module) OwnedResults(fn *types.Func) [numTrackKinds]bool {
	m.index()
	s := m.summaryState()
	if o, ok := s.owned[fn]; ok {
		return *o
	}
	var res [numTrackKinds]bool
	fd := m.decls[fn]
	if fd == nil || fd.Body == nil || s.inOwned[fn] {
		return res // no source, or recursion: not a producer
	}
	s.inOwned[fn] = true
	defer delete(s.inOwned, fn)

	pkg := m.declPkg[fn]
	sig := fn.Type().(*types.Signature)
	trackedResults := make(map[int]trackKind)
	for i := 0; i < sig.Results().Len(); i++ {
		if k, ok := s.trackedKind(sig.Results().At(i).Type()); ok {
			trackedResults[i] = k
		}
	}
	// QToken-returning functions are producers by type alone (the existing
	// qtoken rule); ownership summaries only need the buffer direction.
	for _, k := range trackedResults {
		if k == trackQTok {
			res[trackQTok] = true
		}
	}
	if len(trackedResults) > 0 && pkg != nil {
		walkStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			ret, ok := n.(*ast.ReturnStmt)
			if !ok {
				return true
			}
			for i, e := range ret.Results {
				k, tracked := trackedResults[i]
				if !tracked || k != trackBuf {
					continue
				}
				if m.exprYieldsOwned(pkg, fd, ast.Unparen(e)) {
					res[trackBuf] = true
				}
			}
			return true
		})
	}
	if !s.frozen {
		s.owned[fn] = &res
	}
	return res
}

// exprYieldsOwned reports whether e is an allocator call, a call to an
// owned-returning function, or a local whose definition is one of those.
func (m *Module) exprYieldsOwned(pkg *Package, fd *ast.FuncDecl, e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.CallExpr:
		fn := staticCallee(pkg.Info, x)
		if fn == nil {
			return false
		}
		if fn.Pkg() != nil && strings.HasSuffix(fn.Pkg().Path(), "internal/memory") && bufAllocators[fn.Name()] {
			return true
		}
		return m.OwnedResults(fn)[trackBuf]
	case *ast.Ident:
		obj := pkg.Info.Uses[x]
		if obj == nil {
			return false
		}
		owned := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if owned {
				return false
			}
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Rhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, l := range as.Lhs {
				if id, ok := l.(*ast.Ident); ok && (pkg.Info.Defs[id] == obj || pkg.Info.Uses[id] == obj) {
					if m.exprYieldsOwned(pkg, fd, call) {
						owned = true
					}
				}
			}
			return true
		})
		return owned
	}
	return false
}

// IsOwnedProducer reports whether a call's static callee returns a
// freshly-owned buffer, making the call site an ownership producer.
func (m *Module) IsOwnedProducer(pkg *Package, call *ast.CallExpr) bool {
	fn := staticCallee(pkg.Info, call)
	if fn == nil {
		return false
	}
	return m.OwnedResults(fn)[trackBuf]
}

// PollFacts computes the transitively-closed poll-discipline facts of fn.
func (m *Module) PollFacts(fn *types.Func) pollFacts {
	m.index()
	s := m.summaryState()
	if f, ok := s.facts[fn]; ok {
		return *f
	}
	var facts pollFacts
	fd := m.decls[fn]
	if fd == nil || fd.Body == nil || s.inFacts[fn] {
		return facts // external or recursion: assumed clean; nonalloc covers externals
	}
	s.inFacts[fn] = true
	defer delete(s.inFacts, fn)

	pkg := m.declPkg[fn]
	merge := func(dst *offense, pos token.Pos, via *types.Func) {
		if !dst.found() {
			*dst = offense{Pos: pos, Via: via}
		}
	}
	walkStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // a closure runs on its own schedule
		}
		switch x := n.(type) {
		case *ast.SendStmt:
			merge(&facts.Chan, x.Pos(), nil)
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				merge(&facts.Chan, x.Pos(), nil)
			}
		case *ast.SelectStmt:
			merge(&facts.Chan, x.Pos(), nil)
		case *ast.RangeStmt:
			if tv, ok := pkg.Info.Types[x.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					merge(&facts.Chan, x.Pos(), nil)
				}
			}
		case *ast.GoStmt:
			merge(&facts.Go, x.Pos(), nil)
		case *ast.ForStmt:
			if x.Cond == nil && !loopHasExit(x) {
				merge(&facts.Loop, x.Pos(), nil)
			}
		case *ast.CallExpr:
			if callee := staticCallee(pkg.Info, x); callee != nil {
				if isSyncAcquire(callee) {
					merge(&facts.Lock, x.Pos(), nil)
				} else if callee.Pkg() != nil && m.decls[callee] != nil {
					sub := m.PollFacts(callee)
					if sub.Chan.found() {
						merge(&facts.Chan, x.Pos(), callee)
					}
					if sub.Lock.found() {
						merge(&facts.Lock, x.Pos(), callee)
					}
					if sub.Go.found() {
						merge(&facts.Go, x.Pos(), callee)
					}
					if sub.Loop.found() {
						merge(&facts.Loop, x.Pos(), callee)
					}
				}
			}
		}
		return true
	})
	if !s.frozen {
		s.facts[fn] = &facts
	}
	return facts
}

// isSyncAcquire matches blocking lock acquisition on sync.Mutex/RWMutex.
func isSyncAcquire(fn *types.Func) bool {
	if fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	switch fn.Name() {
	case "Lock", "RLock":
		return true
	}
	return false
}

// loopHasExit reports whether a condition-less for loop can terminate:
// a return, an unlabeled break at its own level, or any labeled
// break/goto (assumed to leave it).
func loopHasExit(loop *ast.ForStmt) bool {
	exits := false
	depth := 0
	var scan func(stmts []ast.Stmt)
	scan = func(stmts []ast.Stmt) {
		for _, s := range stmts {
			if exits {
				return
			}
			switch x := s.(type) {
			case *ast.ReturnStmt:
				exits = true
			case *ast.BranchStmt:
				switch {
				case x.Label != nil:
					exits = true // labeled break/continue/goto: assume it leaves
				case x.Tok == token.BREAK && depth == 0:
					exits = true
				}
			case *ast.BlockStmt:
				scan(x.List)
			case *ast.IfStmt:
				scan(x.Body.List)
				if x.Else != nil {
					scan([]ast.Stmt{x.Else})
				}
			case *ast.ForStmt:
				depth++
				scan(x.Body.List)
				depth--
			case *ast.RangeStmt:
				depth++
				scan(x.Body.List)
				depth--
			case *ast.SwitchStmt:
				depth++
				for _, c := range x.Body.List {
					if cc, ok := c.(*ast.CaseClause); ok {
						scan(cc.Body)
					}
				}
				depth--
			case *ast.TypeSwitchStmt:
				depth++
				for _, c := range x.Body.List {
					if cc, ok := c.(*ast.CaseClause); ok {
						scan(cc.Body)
					}
				}
				depth--
			case *ast.SelectStmt:
				depth++
				for _, c := range x.Body.List {
					if cc, ok := c.(*ast.CommClause); ok {
						scan(cc.Body)
					}
				}
				depth--
			case *ast.LabeledStmt:
				scan([]ast.Stmt{x.Stmt})
			}
		}
	}
	scan(loop.Body.List)
	return exits
}

// A CostEntry is one module function's static cost estimate, for the
// demi-vet -costs report that helps pick //demi:budget values.
type CostEntry struct {
	Pkg    string // import path
	Func   string // receiver-qualified name
	Cost   Cost
	Budget Cost // //demi:budget if annotated, else 0
}

// CostReport estimates every module function, most expensive first, so
// budgets can be chosen with observed headroom.
func (m *Module) CostReport() []CostEntry {
	m.index()
	m.annotIndex()
	var out []CostEntry
	for fn := range m.decls {
		e := CostEntry{Func: fn.Name(), Cost: m.CostEstimate(fn)}
		if fn.Pkg() != nil {
			e.Pkg = fn.Pkg().Path()
		}
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			if tn := namedOwner(sig.Recv().Type()); tn != nil {
				e.Func = tn.Name() + "." + e.Func
			}
		}
		if b, ok := m.BudgetOf(fn); ok {
			e.Budget = b
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		ci, cj := out[i].Cost, out[j].Cost
		if ci == CostUnbounded {
			ci = 1<<62 - 1
		}
		if cj == CostUnbounded {
			cj = 1<<62 - 1
		}
		if ci != cj {
			return ci > cj
		}
		if out[i].Pkg != out[j].Pkg {
			return out[i].Pkg < out[j].Pkg
		}
		return out[i].Func < out[j].Func
	})
	return out
}

// CostEstimate returns fn's worst-case cycle estimate under the static
// cost model, CostUnbounded for (mutual) recursion.
func (m *Module) CostEstimate(fn *types.Func) Cost {
	m.index()
	s := m.summaryState()
	if c, ok := s.cost[fn]; ok {
		return c
	}
	fd := m.decls[fn]
	if fd == nil || fd.Body == nil {
		if fn.Pkg() != nil && stdlibClean(fn) {
			return costStdlib
		}
		return costExtern
	}
	if s.inCost[fn] {
		return CostUnbounded // recursion: no static bound
	}
	s.inCost[fn] = true
	c := m.costStmts(m.declPkg[fn], fd.Body.List)
	delete(s.inCost, fn)
	if !s.frozen {
		s.cost[fn] = c
	}
	return c
}

func (m *Module) costStmts(pkg *Package, list []ast.Stmt) Cost {
	var c Cost
	for _, s := range list {
		c = addCost(c, m.costStmt(pkg, s))
	}
	return c
}

// costStmt charges one statement: structural statements take the most
// expensive branch, loops multiply their body by the assumed worst-case
// trip count, and expressions are scanned for calls and allocations.
func (m *Module) costStmt(pkg *Package, s ast.Stmt) Cost {
	if s == nil {
		return 0
	}
	switch x := s.(type) {
	case *ast.BlockStmt:
		return m.costStmts(pkg, x.List)
	case *ast.IfStmt:
		c := addCost(costStmt, m.costStmt(pkg, x.Init))
		c = addCost(c, m.costExpr(pkg, x.Cond))
		thenC := m.costStmts(pkg, x.Body.List)
		var elseC Cost
		if x.Else != nil {
			elseC = m.costStmt(pkg, x.Else)
		}
		return addCost(c, maxCost(thenC, elseC))
	case *ast.ForStmt:
		body := addCost(m.costExpr(pkg, x.Cond), m.costStmts(pkg, x.Body.List))
		body = addCost(body, m.costStmt(pkg, x.Post))
		return addCost(addCost(costStmt, m.costStmt(pkg, x.Init)), mulCost(body, costLoopIter))
	case *ast.RangeStmt:
		body := m.costStmts(pkg, x.Body.List)
		return addCost(addCost(costStmt, m.costExpr(pkg, x.X)), mulCost(body, costLoopIter))
	case *ast.SwitchStmt:
		c := addCost(costStmt, addCost(m.costStmt(pkg, x.Init), m.costExpr(pkg, x.Tag)))
		var worst Cost
		for _, cs := range x.Body.List {
			if cc, ok := cs.(*ast.CaseClause); ok {
				worst = maxCost(worst, m.costStmts(pkg, cc.Body))
			}
		}
		return addCost(c, worst)
	case *ast.TypeSwitchStmt:
		c := addCost(costStmt, m.costStmt(pkg, x.Init))
		var worst Cost
		for _, cs := range x.Body.List {
			if cc, ok := cs.(*ast.CaseClause); ok {
				worst = maxCost(worst, m.costStmts(pkg, cc.Body))
			}
		}
		return addCost(c, worst)
	case *ast.SelectStmt:
		c := addCost(costStmt, costChanOp)
		var worst Cost
		for _, cs := range x.Body.List {
			if cc, ok := cs.(*ast.CommClause); ok {
				worst = maxCost(worst, m.costStmts(pkg, cc.Body))
			}
		}
		return addCost(c, worst)
	case *ast.LabeledStmt:
		return m.costStmt(pkg, x.Stmt)
	case *ast.GoStmt:
		return addCost(costGo, m.costExpr(pkg, x.Call))
	case *ast.DeferStmt:
		return addCost(costStmt, m.costExpr(pkg, x.Call))
	case *ast.SendStmt:
		return addCost(costChanOp, addCost(m.costExpr(pkg, x.Chan), m.costExpr(pkg, x.Value)))
	case *ast.ReturnStmt:
		c := costStmt
		for _, e := range x.Results {
			c = addCost(c, m.costExpr(pkg, e))
		}
		return c
	case *ast.AssignStmt:
		c := costStmt
		for _, e := range x.Rhs {
			c = addCost(c, m.costExpr(pkg, e))
		}
		for _, e := range x.Lhs {
			c = addCost(c, m.costExpr(pkg, e))
		}
		return c
	case *ast.ExprStmt:
		return addCost(costStmt, m.costExpr(pkg, x.X))
	case *ast.IncDecStmt:
		return addCost(costStmt, m.costExpr(pkg, x.X))
	case *ast.DeclStmt:
		c := costStmt
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c = addCost(c, m.costExpr(pkg, v))
					}
				}
			}
		}
		return c
	case *ast.BranchStmt, *ast.EmptyStmt:
		return costStmt
	}
	return costStmt
}

// costExpr scans an expression for calls, allocating constructs, and
// channel receives, skipping nested function literals (they run on their
// own schedule and are charged where they are polled).
func (m *Module) costExpr(pkg *Package, e ast.Expr) Cost {
	if e == nil {
		return 0
	}
	var c Cost
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			c = addCost(c, m.costCall(pkg, x))
			return true // still descend: argument subexpressions are charged too
		case *ast.CompositeLit:
			if tv, ok := pkg.Info.Types[x]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice, *types.Map:
					c = addCost(c, costAlloc)
				}
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				c = addCost(c, costChanOp)
			}
			if x.Op == token.AND {
				if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					c = addCost(c, costAlloc)
				}
			}
		}
		return true
	})
	return c
}

// costCall charges one call expression (the call itself, not its argument
// subexpressions, which the surrounding costExpr walk charges).
func (m *Module) costCall(pkg *Package, call *ast.CallExpr) Cost {
	info := pkg.Info
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		// Conversion. String<->[]byte copies; everything else is free-ish.
		if len(call.Args) == 1 {
			if at, ok := info.Types[call.Args[0]]; ok {
				if isByteString(tv.Type, at.Type) || isByteString(at.Type, tv.Type) {
					return costMemOp
				}
			}
		}
		return 0
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new", "append":
				return costAlloc
			case "copy":
				return costMemOp
			case "len", "cap", "min", "max":
				return 0
			default:
				return costStmt
			}
		}
	}
	fn := staticCallee(info, call)
	if fn == nil {
		return costExtern // dynamic call
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil && types.IsInterface(recv.Type()) {
		return costExtern // interface dispatch: implementations unknown
	}
	return addCost(costCall, m.CostEstimate(fn))
}
