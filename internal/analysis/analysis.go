// Package analysis implements demi-vet, the repository's static analyzer.
// It enforces, at build time, the contracts the paper states and the chaos
// soak (PR 4) can only probe empirically at run time:
//
//   - qtoken discipline: every qtoken produced by push/pop/accept/connect
//     must flow into a Wait call, be returned, or be stored — never dropped
//     (qtoken.go).
//   - buffer ownership: a DMA-heap buffer that is pushed may not be written
//     afterward, and every allocated buffer must be freed, pushed, returned
//     or stored on all paths — including push-failure paths, where
//     ownership does not transfer (ownership.go).
//   - determinism: packages in the simulated world may not read the wall
//     clock, use global math/rand, or feed map-iteration order into an
//     output sink (determinism.go).
//   - nonalloc: functions annotated //demi:nonalloc are rejected if they
//     contain allocating constructs or call into code that may allocate
//     (nonalloc.go).
//
// The analyzer is built exclusively on the standard library's go/parser,
// go/ast and go/types (with the source importer for the standard library),
// so it adds no dependencies and runs anywhere the toolchain does.
package analysis

import (
	"fmt"
	"go/token"
	"path/filepath"
	"sort"
	"time"
)

// A Finding is one rule violation at a source position.
type Finding struct {
	Analyzer string // which analyzer produced it
	Pos      token.Position
	File     string // module-root-relative path, stable for allowlisting
	Message  string
	Hint     string // how to fix it
}

// String renders the finding as file:line:col: [analyzer] message (fix: hint).
func (f Finding) String() string {
	s := fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
	if f.Hint != "" {
		s += " (fix: " + f.Hint + ")"
	}
	return s
}

// An Analyzer is one multi-file rule checker run over a package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// A Pass is one analyzer's view of one package, with reporting plumbing.
type Pass struct {
	Mod *Module
	Pkg *Package

	analyzer *Analyzer
	sink     *[]Finding
}

// Reportf records a finding at pos. The hint is the suggested fix; pass ""
// when none applies.
func (p *Pass) Reportf(pos token.Pos, hint, format string, args ...any) {
	position := p.Mod.Fset.Position(pos)
	file := position.Filename
	if rel, err := filepath.Rel(p.Mod.Root, file); err == nil {
		file = filepath.ToSlash(rel)
	}
	*p.sink = append(*p.sink, Finding{
		Analyzer: p.analyzer.Name,
		Pos:      position,
		File:     file,
		Message:  fmt.Sprintf(format, args...),
		Hint:     hint,
	})
}

// DefaultAnalyzers returns the four demi-vet analyzers with their default
// configuration.
func DefaultAnalyzers() []*Analyzer {
	return []*Analyzer{
		QTokenAnalyzer(),
		OwnershipAnalyzer(),
		DeterminismAnalyzer(nil),
		NonAllocAnalyzer(),
	}
}

// Run executes the analyzers over the given packages, returning findings
// sorted by position.
func Run(mod *Module, pkgs []*Package, analyzers []*Analyzer) []Finding {
	fs, _ := RunTimed(mod, pkgs, analyzers)
	return fs
}

// RunTimed is Run, also reporting per-analyzer wall time so CI can keep
// the lint budget honest.
func RunTimed(mod *Module, pkgs []*Package, analyzers []*Analyzer) ([]Finding, map[string]time.Duration) {
	var findings []Finding
	elapsed := make(map[string]time.Duration)
	for _, a := range analyzers {
		start := time.Now()
		for _, pkg := range pkgs {
			pass := &Pass{Mod: mod, Pkg: pkg, analyzer: a, sink: &findings}
			a.Run(pass)
		}
		elapsed[a.Name] += time.Since(start)
	}
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].File != findings[j].File {
			return findings[i].File < findings[j].File
		}
		if findings[i].Pos.Line != findings[j].Pos.Line {
			return findings[i].Pos.Line < findings[j].Pos.Line
		}
		if findings[i].Pos.Column != findings[j].Pos.Column {
			return findings[i].Pos.Column < findings[j].Pos.Column
		}
		return findings[i].Message < findings[j].Message
	})
	return findings, elapsed
}
