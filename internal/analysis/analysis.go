// Package analysis implements demi-vet, the repository's static analyzer.
// It enforces, at build time, the contracts the paper states and the chaos
// soak (PR 4) can only probe empirically at run time:
//
//   - qtoken discipline: every qtoken produced by push/pop/accept/connect
//     must flow into a Wait call, be returned, or be stored — never dropped
//     (qtoken.go).
//   - buffer ownership: a DMA-heap buffer that is pushed may not be written
//     afterward, and every allocated buffer must be freed, pushed, returned
//     or stored on all paths — including push-failure paths, where
//     ownership does not transfer (ownership.go).
//   - determinism: packages in the simulated world may not read the wall
//     clock, use global math/rand, or feed map-iteration order into an
//     output sink (determinism.go).
//   - nonalloc: functions annotated //demi:nonalloc are rejected if they
//     contain allocating constructs or call into code that may allocate
//     (nonalloc.go).
//   - stateguard: struct fields annotated //demi:stateguard may not be
//     written on any path that returns a non-nil error (stateguard.go).
//   - polldiscipline: coroutine Poll methods and //demi:nonalloc functions
//     may not, transitively, touch channels, acquire mutexes, spawn
//     goroutines, or spin in unbounded loops (polldiscipline.go).
//   - capescape: tracked capabilities (*memory.Buf, core.QToken,
//     *tenant.View) may not escape to package variables, exported
//     non-//demi:carrier struct fields, or closures that outlive the call
//     (capescape.go).
//   - cyclebudget: //demi:budget=<duration> functions must fit the static
//     worst-case cost estimate (cyclebudget.go).
//
// The qtoken, ownership, stateguard and capescape rules sit on a shared
// dataflow core: a per-function control-flow graph (cfg.go) and an
// interprocedural summary engine (summary.go) that fixpoints parameter
// ownership modes, owned results, poll facts and cost estimates over the
// module call graph.
//
// The analyzer is built exclusively on the standard library's go/parser,
// go/ast and go/types (with the source importer for the standard library),
// so it adds no dependencies and runs anywhere the toolchain does.
package analysis

import (
	"fmt"
	"go/token"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"
)

// A Finding is one rule violation at a source position.
type Finding struct {
	Analyzer string // which analyzer produced it
	Pos      token.Position
	File     string // module-root-relative path, stable for allowlisting
	Message  string
	Hint     string // how to fix it
}

// String renders the finding as file:line:col: [analyzer] message (fix: hint).
func (f Finding) String() string {
	s := fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
	if f.Hint != "" {
		s += " (fix: " + f.Hint + ")"
	}
	return s
}

// An Analyzer is one multi-file rule checker run over a package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// A Pass is one analyzer's view of one package, with reporting plumbing.
type Pass struct {
	Mod *Module
	Pkg *Package

	analyzer *Analyzer
	sink     *[]Finding
}

// Reportf records a finding at pos. The hint is the suggested fix; pass ""
// when none applies.
func (p *Pass) Reportf(pos token.Pos, hint, format string, args ...any) {
	position := p.Mod.Fset.Position(pos)
	file := position.Filename
	if rel, err := filepath.Rel(p.Mod.Root, file); err == nil {
		file = filepath.ToSlash(rel)
	}
	*p.sink = append(*p.sink, Finding{
		Analyzer: p.analyzer.Name,
		Pos:      position,
		File:     file,
		Message:  fmt.Sprintf(format, args...),
		Hint:     hint,
	})
}

// DefaultAnalyzers returns the eight demi-vet analyzers with their default
// configuration.
func DefaultAnalyzers() []*Analyzer {
	return []*Analyzer{
		QTokenAnalyzer(),
		OwnershipAnalyzer(),
		DeterminismAnalyzer(nil),
		NonAllocAnalyzer(),
		StateguardAnalyzer(),
		PolldisciplineAnalyzer(),
		CapescapeAnalyzer(),
		CyclebudgetAnalyzer(),
	}
}

// Run executes the analyzers over the given packages, returning findings
// sorted by position.
func Run(mod *Module, pkgs []*Package, analyzers []*Analyzer) []Finding {
	fs, _ := RunTimed(mod, pkgs, analyzers)
	return fs
}

// RunTimed is Run, also reporting per-analyzer time so CI can keep the
// lint budget honest. Summaries are precomputed single-threaded, then the
// per-package passes run on a worker pool (the summary memos are frozen
// and read-only by then); per-analyzer durations are summed across
// workers, so they report aggregate compute, not wall time.
func RunTimed(mod *Module, pkgs []*Package, analyzers []*Analyzer) ([]Finding, map[string]time.Duration) {
	mod.Precompute()

	workers := runtime.GOMAXPROCS(0)
	if workers > len(pkgs) {
		workers = len(pkgs)
	}
	if workers < 1 {
		workers = 1
	}
	type shard struct {
		findings []Finding
		elapsed  map[string]time.Duration
	}
	shards := make([]shard, workers)
	jobs := make(chan *Package)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			sh.elapsed = make(map[string]time.Duration)
			for pkg := range jobs {
				for _, a := range analyzers {
					start := time.Now()
					pass := &Pass{Mod: mod, Pkg: pkg, analyzer: a, sink: &sh.findings}
					a.Run(pass)
					sh.elapsed[a.Name] += time.Since(start)
				}
			}
		}(&shards[w])
	}
	for _, pkg := range pkgs {
		jobs <- pkg
	}
	close(jobs)
	wg.Wait()

	var findings []Finding
	elapsed := make(map[string]time.Duration)
	for _, a := range analyzers {
		elapsed[a.Name] = 0
	}
	for _, sh := range shards {
		findings = append(findings, sh.findings...)
		for n, d := range sh.elapsed {
			elapsed[n] += d
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].File != findings[j].File {
			return findings[i].File < findings[j].File
		}
		if findings[i].Pos.Line != findings[j].Pos.Line {
			return findings[i].Pos.Line < findings[j].Pos.Line
		}
		if findings[i].Pos.Column != findings[j].Pos.Column {
			return findings[i].Pos.Column < findings[j].Pos.Column
		}
		if findings[i].Analyzer != findings[j].Analyzer {
			return findings[i].Analyzer < findings[j].Analyzer
		}
		return findings[i].Message < findings[j].Message
	})
	return findings, elapsed
}
