package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one type-checked package of the module under analysis.
type Package struct {
	Path  string // import path, e.g. "demikernel/internal/wire"
	Types *types.Package
	Files []*ast.File
	Info  *types.Info
}

// A Module holds every loaded package of one Go module plus the
// cross-package indexes the analyzers share (function declarations,
// //demi:nonalloc annotations, allocation summaries). Loading uses only
// the standard library: go/parser for syntax, go/types for semantics,
// and the stdlib source importer for standard-library dependencies.
type Module struct {
	Fset *token.FileSet
	Root string // directory containing go.mod
	Path string // module path from the go.mod module directive
	Pkgs []*Package

	byPath map[string]*Package
	std    types.Importer

	// Cross-package indexes, built lazily by index().
	decls    map[*types.Func]*ast.FuncDecl
	declPkg  map[*types.Func]*Package
	nonalloc map[*types.Func]bool
	indexed  int // number of packages already indexed

	allocMemo map[*types.Func]int8 // allocation summary memo (see nonalloc.go)

	sums *summaries // interprocedural summary engine state (see summary.go)
}

// FindModuleRoot walks up from dir to the directory containing go.mod.
func FindModuleRoot(dir string) (root, modulePath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if name, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(name), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module directive", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// LoadModule parses and type-checks every package of the module containing
// dir (test files and testdata trees excluded). Standard-library imports
// are type-checked from source by the stdlib importer; module-internal
// imports are resolved recursively by the loader itself.
func LoadModule(dir string) (*Module, error) {
	root, modPath, err := FindModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	m := &Module{
		Fset:      fset,
		Root:      root,
		Path:      modPath,
		byPath:    make(map[string]*Package),
		std:       importer.ForCompiler(fset, "source", nil),
		allocMemo: make(map[*types.Func]int8),
	}
	var dirs []string
	err = filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			base := filepath.Base(p)
			if p != root && (base == "testdata" || strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(p, ".go") && !strings.HasSuffix(p, "_test.go") {
			dir := filepath.Dir(p)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, d := range dirs {
		if _, err := m.LoadDir(d); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// LoadDir loads the package in dir (which must be inside the module tree),
// returning the cached package if it was already loaded. It works for
// testdata fixture packages too, which the module walk skips.
func (m *Module) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(m.Root, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("analysis: %s is outside module root %s", dir, m.Root)
	}
	path := m.Path
	if rel != "." {
		path = m.Path + "/" + filepath.ToSlash(rel)
	}
	return m.load(path)
}

// PackageByPath returns the loaded package with the given import path.
func (m *Module) PackageByPath(path string) *Package { return m.byPath[path] }

// load parses and type-checks the package with the given module-internal
// import path, memoized.
func (m *Module) load(path string) (*Package, error) {
	if p, ok := m.byPath[path]; ok {
		return p, nil
	}
	dir := filepath.Join(m.Root, strings.TrimPrefix(path, m.Path))
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(m.Fset, filepath.Join(dir, n), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	var hard []error
	conf := types.Config{
		Importer: (*moduleImporter)(m),
		Error: func(err error) {
			// Tolerate soft errors ("declared and not used"): analyzer
			// fixtures intentionally leave values on the floor.
			if te, ok := err.(types.Error); ok && te.Soft {
				return
			}
			hard = append(hard, err)
		},
	}
	tpkg, _ := conf.Check(path, m.Fset, files, info)
	if len(hard) > 0 {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", path, hard[0])
	}
	p := &Package{Path: path, Types: tpkg, Files: files, Info: info}
	m.byPath[path] = p
	m.Pkgs = append(m.Pkgs, p)
	return p, nil
}

// moduleImporter adapts Module to types.Importer: module-internal paths are
// loaded from source by the module loader, everything else (the standard
// library) is delegated to the stdlib source importer.
type moduleImporter Module

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	m := (*Module)(mi)
	if path == m.Path || strings.HasPrefix(path, m.Path+"/") {
		p, err := m.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return m.std.Import(path)
}

// LookupNamed finds the named type name in the loaded package whose import
// path ends in pathSuffix (e.g. "internal/core", "QToken"). It returns nil
// if no such package or type is loaded.
func (m *Module) LookupNamed(pathSuffix, name string) *types.Named {
	for _, p := range m.Pkgs {
		if !strings.HasSuffix(p.Path, pathSuffix) {
			continue
		}
		obj := p.Types.Scope().Lookup(name)
		if obj == nil {
			continue
		}
		if n, ok := obj.Type().(*types.Named); ok {
			return n
		}
	}
	return nil
}

// index builds (or extends, after fixture loads) the cross-package maps
// from *types.Func to declaration, and the //demi:nonalloc annotation set.
func (m *Module) index() {
	if m.decls == nil {
		m.decls = make(map[*types.Func]*ast.FuncDecl)
		m.declPkg = make(map[*types.Func]*Package)
		m.nonalloc = make(map[*types.Func]bool)
	}
	for ; m.indexed < len(m.Pkgs); m.indexed++ {
		p := m.Pkgs[m.indexed]
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				m.decls[fn] = fd
				m.declPkg[fn] = p
				if hasNonAllocAnnotation(fd) {
					m.nonalloc[fn] = true
				}
			}
		}
	}
}

// hasNonAllocAnnotation reports whether the function's doc comment carries
// a //demi:nonalloc line. Grammar: the marker must start the comment line;
// anything after it on the same line is free-form rationale.
func hasNonAllocAnnotation(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		text = strings.TrimSpace(text)
		if text == "demi:nonalloc" || strings.HasPrefix(text, "demi:nonalloc ") {
			return true
		}
	}
	return false
}

// FuncDecl returns the syntax of fn if it was declared in the module.
func (m *Module) FuncDecl(fn *types.Func) *ast.FuncDecl {
	m.index()
	return m.decls[fn]
}

// IsNonAlloc reports whether fn carries the //demi:nonalloc annotation.
func (m *Module) IsNonAlloc(fn *types.Func) bool {
	m.index()
	return m.nonalloc[fn]
}
