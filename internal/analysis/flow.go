package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// flow.go holds the lightweight dataflow machinery the qtoken and buffer
// ownership analyzers share: finding the calls that produce a tracked value
// (a core.QToken, a *memory.Buf), resolving which local variable captured
// it, and classifying every later use of that variable as consuming
// (redeems, transfers or stores the value) or inert (compares, reads).

// walkStack visits every node under root with its ancestor stack
// (outermost first). Returning false from fn skips the node's children.
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// enclosingFunc returns the innermost FuncDecl or FuncLit body on the stack.
func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncDecl:
			return f
		case *ast.FuncLit:
			return f
		}
	}
	return nil
}

// outermostFuncBody returns the body of the outermost function declaration
// on the stack: the scope within which a tracked variable's uses are
// searched. (Objects declared in a nested FuncLit only have uses inside
// it, so the wider scope is always a sound superset.)
func outermostFuncBody(stack []ast.Node) *ast.BlockStmt {
	for _, n := range stack {
		if fd, ok := n.(*ast.FuncDecl); ok {
			return fd.Body
		}
		if fl, ok := n.(*ast.FuncLit); ok {
			return fl.Body
		}
	}
	return nil
}

// A producer is one call whose result includes a tracked value.
type producer struct {
	call     *ast.CallExpr
	fn       *ast.BlockStmt // function body the value lives in (nil at package scope)
	obj      types.Object   // variable holding the value; nil if not captured
	errObj   types.Object   // error result captured alongside, if any
	blank    bool           // tracked result assigned to _
	dropped  bool           // whole result discarded (bare expression statement)
	consumed bool           // result flows directly onward (return/arg/composite)
	stmt     ast.Stmt       // statement containing the call (assign or expr stmt)
	guard    *ast.IfStmt    // if the call is an IfStmt.Init, that IfStmt
}

// findProducers scans a file for calls with a result matching isTracked
// (filtered by okCall when non-nil) and resolves what happened to the
// tracked result.
func findProducers(info *types.Info, file *ast.File, isTracked func(types.Type) bool, okCall func(*ast.CallExpr) bool) []producer {
	var out []producer
	walkStack(file, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		tv, ok := info.Types[call]
		if !ok {
			return true
		}
		idx := -1 // index of the tracked component in the result tuple
		errIdx := -1
		switch t := tv.Type.(type) {
		case *types.Tuple:
			for i := 0; i < t.Len(); i++ {
				ti := t.At(i).Type()
				if isTracked(ti) && idx < 0 {
					idx = i
				}
				if isErrorType(ti) {
					errIdx = i
				}
			}
			if idx < 0 {
				return true
			}
		default:
			if tv.Type == nil || !isTracked(tv.Type) {
				return true
			}
			idx = 0
		}
		if okCall != nil && !okCall(call) {
			return true
		}
		p := producer{call: call, fn: outermostFuncBody(stack)}
		// Classify the call's context from its nearest ancestors.
		cur := ast.Node(call)
		for i := len(stack) - 1; i >= 0; i-- {
			a := stack[i]
			if pe, ok := a.(*ast.ParenExpr); ok {
				cur = pe
				continue
			}
			switch s := a.(type) {
			case *ast.AssignStmt:
				p.stmt = s
				assignProducer(info, &p, s, cur, idx, errIdx)
			case *ast.ValueSpec:
				assignSpecProducer(info, &p, s, cur, idx, errIdx)
			case *ast.ExprStmt:
				p.stmt = s
				p.dropped = true
			default:
				// The call's value flows somewhere structurally (return
				// statement, argument to another call, composite literal,
				// channel send...): consumed by construction.
				p.consumed = true
			}
			// Record an enclosing guard `if qt, err := f(); ...`.
			if j := i - 1; j >= 0 && p.stmt != nil {
				if ifs, ok := stack[j].(*ast.IfStmt); ok && ifs.Init == p.stmt {
					p.guard = ifs
				}
			}
			break
		}
		if p.stmt == nil && !p.consumed && !p.dropped {
			p.consumed = true // package-level initializer etc.
		}
		out = append(out, p)
		return true
	})
	return out
}

// assignProducer resolves which LHS variable captured the tracked result.
func assignProducer(info *types.Info, p *producer, s *ast.AssignStmt, cur ast.Node, idx, errIdx int) {
	if len(s.Rhs) == 1 && s.Rhs[0] == cur {
		// qt, err := f()  — component i maps to Lhs[i].
		bindLHS(info, p, s.Lhs, idx, errIdx)
		return
	}
	// f() appears as one RHS among several: it has exactly one result.
	for i, r := range s.Rhs {
		if r == cur && i < len(s.Lhs) {
			bindLHS(info, p, s.Lhs[i:i+1], 0, -1)
			return
		}
	}
	p.consumed = true // nested inside a larger RHS expression
}

func assignSpecProducer(info *types.Info, p *producer, s *ast.ValueSpec, cur ast.Node, idx, errIdx int) {
	if len(s.Values) == 1 && s.Values[0] == cur {
		if idx < len(s.Names) {
			id := s.Names[idx]
			if id.Name == "_" {
				p.blank = true
			} else {
				p.obj = info.Defs[id]
			}
			if errIdx >= 0 && errIdx < len(s.Names) && s.Names[errIdx].Name != "_" {
				p.errObj = info.Defs[s.Names[errIdx]]
			}
			return
		}
	}
	p.consumed = true
}

func bindLHS(info *types.Info, p *producer, lhs []ast.Expr, idx, errIdx int) {
	get := func(i int) (types.Object, bool /*blank*/, bool /*ident*/) {
		if i >= len(lhs) {
			return nil, false, false
		}
		id, ok := lhs[i].(*ast.Ident)
		if !ok {
			return nil, false, false // stored straight into a field/index: consumed
		}
		if id.Name == "_" {
			return nil, true, true
		}
		if o := info.Defs[id]; o != nil {
			return o, false, true
		}
		return info.Uses[id], false, true
	}
	obj, blank, isIdent := get(idx)
	switch {
	case blank:
		p.blank = true
	case obj != nil:
		p.obj = obj
	case !isIdent:
		p.consumed = true // e.g. c.qt, err = f(): stored in a field
	}
	if errIdx >= 0 {
		if eo, _, _ := get(errIdx); eo != nil {
			p.errObj = eo
		}
	}
}

// An objUse is one classified appearance of a tracked variable.
type objUse struct {
	id        *ast.Ident
	consuming bool
	how       string // what the use does, for diagnostics

	// call and argIndex are set when the use consumes by being passed as a
	// call argument: the interprocedural engine re-resolves these against
	// the callee's parameter summary (a callee that merely borrows the
	// value does not consume it).
	call     *ast.CallExpr
	argIndex int
	borrowed bool // downgraded by the callee's summary (ParamBorrows)
}

// collectUses finds every use of obj inside body and classifies it. The
// consumingMethod hook decides whether a method call on the object consumes
// it (e.g. Buf.Free does, Buf.Len does not); nil means no method consumes.
func collectUses(info *types.Info, body ast.Node, obj types.Object, consumingMethod func(name string) bool) []objUse {
	var uses []objUse
	walkStack(body, func(n ast.Node, stack []ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || info.Uses[id] != obj {
			return true
		}
		u := objUse{id: id, argIndex: -1}
		u.consuming, u.how, u.call, u.argIndex = classifyUse(stack, id, consumingMethod)
		uses = append(uses, u)
		return true
	})
	return uses
}

// classifyUse walks outward from an identifier to decide whether this use
// consumes the tracked value. For consuming call-argument uses it also
// returns the call and the argument position the value flows into.
func classifyUse(stack []ast.Node, id *ast.Ident, consumingMethod func(string) bool) (bool, string, *ast.CallExpr, int) {
	cur := ast.Node(id)
	for i := len(stack) - 1; i >= 0; i-- {
		switch a := stack[i].(type) {
		case *ast.ParenExpr, *ast.StarExpr, *ast.TypeAssertExpr:
			cur = a.(ast.Node)
		case *ast.SelectorExpr:
			if a.X != cur {
				return false, "selector", nil, -1
			}
			// Method call on the object?
			if i > 0 {
				if call, ok := stack[i-1].(*ast.CallExpr); ok && call.Fun == a {
					if consumingMethod != nil && consumingMethod(a.Sel.Name) {
						return true, "." + a.Sel.Name + "()", nil, -1
					}
					return false, "." + a.Sel.Name + "()", nil, -1
				}
			}
			return false, "field access", nil, -1
		case *ast.CallExpr:
			if cur == a.Fun {
				return false, "called", nil, -1
			}
			arg := -1
			for k, e := range a.Args {
				if e == cur {
					arg = k
				}
			}
			return true, "passed to " + exprString(a.Fun), a, arg
		case *ast.ReturnStmt:
			return true, "returned", nil, -1
		case *ast.AssignStmt:
			for k, r := range a.Rhs {
				if r == cur {
					// `_ = x` keeps the compiler quiet but consumes nothing.
					if len(a.Lhs) == len(a.Rhs) {
						if lid, ok := a.Lhs[k].(*ast.Ident); ok && lid.Name == "_" {
							return false, "discarded with _", nil, -1
						}
					}
					return true, "stored", nil, -1
				}
			}
			return false, "assigned over", nil, -1
		case *ast.ValueSpec:
			for _, v := range a.Values {
				if v == cur {
					return true, "stored", nil, -1
				}
			}
			return false, "declared", nil, -1
		case *ast.CompositeLit:
			return true, "stored in composite literal", nil, -1
		case *ast.KeyValueExpr:
			if a.Value == cur {
				cur = a
				continue
			}
			return false, "map key", nil, -1
		case *ast.SendStmt:
			if a.Value == cur {
				return true, "sent on channel", nil, -1
			}
			return false, "channel expr", nil, -1
		case *ast.IndexExpr:
			if a.X == cur {
				cur = a
				continue
			}
			return false, "index", nil, -1
		case *ast.SliceExpr:
			if a.X == cur {
				cur = a
				continue
			}
			return false, "slice bound", nil, -1
		case *ast.UnaryExpr:
			if a.Op == token.AND {
				return true, "address taken", nil, -1
			}
			return false, "operand", nil, -1
		case *ast.BinaryExpr:
			return false, "compared", nil, -1
		default:
			return false, "read", nil, -1
		}
	}
	return false, "read", nil, -1
}

// containsIdentOf reports whether the subtree contains an identifier
// resolving to obj.
func containsIdentOf(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if found {
			return false
		}
		if id, ok := c.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
			return false
		}
		return true
	})
	return found
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

// exprString renders a short printable form of an expression (selector
// chains and identifiers; anything else becomes "call").
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.ParenExpr:
		return exprString(x.X)
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	case *ast.CallExpr:
		return exprString(x.Fun) + "()"
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	}
	return "call"
}
