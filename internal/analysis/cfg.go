package analysis

import (
	"go/ast"
	"go/token"
)

// cfg.go builds the per-function control-flow graph the path-sensitive
// analyzers run on. One Block is a maximal straight-line run of statements;
// edges follow Go's control statements: if/else, for (all three clauses),
// range, switch/type-switch (with fallthrough), select, labeled
// break/continue, and goto. Return statements edge to the function exit;
// panic (and test Fatal) terminate a path without reaching it, so leaks on
// panicking paths are not charged. Deferred statements are collected
// separately: they run at every exit, so a consuming use inside a defer
// discharges an obligation on all paths.

// A Block is one basic block of a function CFG.
type Block struct {
	Index int
	// Nodes are the block's statements (and branch-condition expressions)
	// in execution order. Appended conditions let use-scanners see
	// consuming uses inside `if l.Wait(qt) == nil { ... }` style branches.
	Nodes []ast.Node
	// Cond is the boolean branch expression when the block ends in a
	// two-way conditional: Succs[0] is the true edge, Succs[1] the false
	// edge. Nil for unconditional blocks and multi-way branches (range,
	// switch, select), whose successors are not condition-prunable.
	Cond ast.Expr
	// Succs are the successor blocks. Empty for blocks ending the
	// function: a Return, a panic, or falling off the end of the body.
	Succs []*Block
	// Return is set when the block ends in an explicit return statement.
	Return *ast.ReturnStmt
	// Panics is set when the block ends in panic()/t.Fatal()/log.Fatal():
	// the path terminates without reaching a normal exit.
	Panics bool
}

// A CFG is the control-flow graph of one function body.
type CFG struct {
	Entry  *Block
	Blocks []*Block
	// Defers are the function's defer statements, in source order. Their
	// bodies execute at every exit reached after the defer runs.
	Defers []*ast.DeferStmt
	// pos locates each appended statement node in its block, for starting
	// a path walk at a producer statement.
	pos map[ast.Node]blockPos
}

type blockPos struct {
	block *Block
	index int // index into block.Nodes
}

// Lookup returns the block and intra-block index of a statement node that
// was appended to the CFG, or (nil, -1) when the node is not part of it
// (e.g. it lives inside a nested function literal).
func (g *CFG) Lookup(n ast.Node) (*Block, int) {
	if p, ok := g.pos[n]; ok {
		return p.block, p.index
	}
	return nil, -1
}

// loopFrame tracks the break/continue targets of one enclosing loop,
// switch, or select, plus its label when it has one.
type loopFrame struct {
	label     string
	breakTo   *Block
	contTo    *Block // nil for switch/select: continue skips them
	isLoop    bool
	savedCont *Block
}

type cfgBuilder struct {
	g      *CFG
	cur    *Block
	frames []loopFrame
	labels map[string]*Block // goto targets
	gotos  []pendingGoto
}

type pendingGoto struct {
	from  *Block
	label string
}

// BuildCFG constructs the control-flow graph of a function body. Nested
// function literals are not descended into: each gets its own CFG.
func BuildCFG(body *ast.BlockStmt) *CFG {
	g := &CFG{pos: make(map[ast.Node]blockPos)}
	b := &cfgBuilder{g: g, labels: make(map[string]*Block)}
	b.cur = b.newBlock()
	g.Entry = b.cur
	b.stmtList(body.List)
	// Resolve forward gotos now that every label has a block.
	for _, pg := range b.gotos {
		if tgt, ok := b.labels[pg.label]; ok {
			pg.from.Succs = append(pg.from.Succs, tgt)
		}
	}
	return g
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// startBlock finishes cur with an edge to a fresh block and makes it
// current.
func (b *cfgBuilder) startBlock() *Block {
	nb := b.newBlock()
	b.edge(b.cur, nb)
	b.cur = nb
	return nb
}

func (b *cfgBuilder) edge(from, to *Block) {
	if from.Return != nil || from.Panics {
		return // terminated blocks have no fallthrough edge
	}
	from.Succs = append(from.Succs, to)
}

func (b *cfgBuilder) append(n ast.Node) {
	if n == nil {
		return
	}
	b.g.pos[n] = blockPos{block: b.cur, index: len(b.cur.Nodes)}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s, "")
	case *ast.RangeStmt:
		b.rangeStmt(s, "")
	case *ast.SwitchStmt:
		b.switchStmt(s.Init, s.Tag, nil, s.Body, "")
	case *ast.TypeSwitchStmt:
		b.switchStmt(s.Init, nil, s.Assign, s.Body, "")
	case *ast.SelectStmt:
		b.selectStmt(s, "")
	case *ast.LabeledStmt:
		b.labeledStmt(s)
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.ReturnStmt:
		b.append(s)
		b.cur.Return = s
		b.cur = b.newBlock() // anything after is unreachable
	case *ast.DeferStmt:
		b.g.Defers = append(b.g.Defers, s)
	case *ast.ExprStmt:
		b.append(s)
		if isPanicStmt(s) {
			b.cur.Panics = true
			b.cur = b.newBlock()
		}
	default:
		// Assign, IncDec, Send, Go, Decl, Empty: straight-line.
		b.append(s)
	}
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.append(s.Init)
	}
	b.append(s.Cond)
	condBlk := b.cur
	condBlk.Cond = s.Cond

	thenBlk := b.newBlock()
	condBlk.Succs = append(condBlk.Succs, thenBlk) // true edge
	b.cur = thenBlk
	b.stmtList(s.Body.List)
	thenEnd := b.cur

	join := b.newBlock()
	if s.Else != nil {
		elseBlk := b.newBlock()
		condBlk.Succs = append(condBlk.Succs, elseBlk) // false edge
		b.cur = elseBlk
		b.stmt(s.Else)
		b.edge(b.cur, join)
	} else {
		condBlk.Succs = append(condBlk.Succs, join) // false edge
	}
	b.edge(thenEnd, join)
	b.cur = join
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.append(s.Init)
	}
	header := b.startBlock()
	after := b.newBlock()
	post := header
	if s.Post != nil {
		post = b.newBlock()
		post.Succs = append(post.Succs, header)
	}

	if s.Cond != nil {
		b.append(s.Cond)
		header.Cond = s.Cond
	}
	bodyBlk := b.newBlock()
	header.Succs = append(header.Succs, bodyBlk) // true (or only) edge
	if s.Cond != nil {
		header.Succs = append(header.Succs, after) // false edge
	}

	b.pushFrame(loopFrame{label: label, breakTo: after, contTo: post, isLoop: true})
	b.cur = bodyBlk
	b.stmtList(s.Body.List)
	if s.Post != nil {
		b.edge(b.cur, post)
		b.cur = post
		b.append(s.Post)
	} else {
		b.edge(b.cur, header)
	}
	b.popFrame()
	b.cur = after
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt, label string) {
	b.append(s.X)
	header := b.cur
	bodyBlk := b.newBlock()
	after := b.newBlock()
	// A range header is a multi-way branch (iterate vs. done), not
	// condition-prunable.
	header.Succs = append(header.Succs, bodyBlk, after)

	b.pushFrame(loopFrame{label: label, breakTo: after, contTo: header, isLoop: true})
	b.cur = bodyBlk
	b.stmtList(s.Body.List)
	b.edge(b.cur, header)
	b.popFrame()
	b.cur = after
}

// switchStmt handles both expression and type switches: tag/assign
// evaluated in the header, each case body its own block, fallthrough
// edging into the next body, and an implicit edge past the switch when
// there is no default case.
func (b *cfgBuilder) switchStmt(init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt, label string) {
	if init != nil {
		b.append(init)
	}
	if tag != nil {
		b.append(tag)
	}
	if assign != nil {
		b.append(assign)
	}
	header := b.cur
	after := b.newBlock()
	b.pushFrame(loopFrame{label: label, breakTo: after})

	var caseBlks []*Block
	var clauses []*ast.CaseClause
	hasDefault := false
	for _, cs := range body.List {
		cc, ok := cs.(*ast.CaseClause)
		if !ok {
			continue
		}
		blk := b.newBlock()
		header.Succs = append(header.Succs, blk)
		caseBlks = append(caseBlks, blk)
		clauses = append(clauses, cc)
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		header.Succs = append(header.Succs, after)
	}
	for i, cc := range clauses {
		b.cur = caseBlks[i]
		for _, e := range cc.List {
			b.append(e)
		}
		fallsThrough := false
		for _, cs := range cc.Body {
			if br, ok := cs.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
				continue
			}
			b.stmt(cs)
		}
		if fallsThrough && i+1 < len(caseBlks) {
			b.edge(b.cur, caseBlks[i+1])
		} else {
			b.edge(b.cur, after)
		}
	}
	b.popFrame()
	b.cur = after
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt, label string) {
	header := b.cur
	after := b.newBlock()
	b.pushFrame(loopFrame{label: label, breakTo: after})
	for _, cs := range s.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		blk := b.newBlock()
		header.Succs = append(header.Succs, blk)
		b.cur = blk
		if cc.Comm != nil {
			b.append(cc.Comm)
		}
		b.stmtList(cc.Body)
		b.edge(b.cur, after)
	}
	b.popFrame()
	b.cur = after
}

func (b *cfgBuilder) labeledStmt(s *ast.LabeledStmt) {
	// A label is a goto target: start a fresh block for it.
	tgt := b.startBlock()
	b.labels[s.Label.Name] = tgt
	switch inner := s.Stmt.(type) {
	case *ast.ForStmt:
		b.forStmt(inner, s.Label.Name)
	case *ast.RangeStmt:
		b.rangeStmt(inner, s.Label.Name)
	case *ast.SwitchStmt:
		b.switchStmt(inner.Init, inner.Tag, nil, inner.Body, s.Label.Name)
	case *ast.TypeSwitchStmt:
		b.switchStmt(inner.Init, nil, inner.Assign, inner.Body, s.Label.Name)
	case *ast.SelectStmt:
		b.selectStmt(inner, s.Label.Name)
	default:
		b.stmt(s.Stmt)
	}
}

func (b *cfgBuilder) branchStmt(s *ast.BranchStmt) {
	switch s.Tok {
	case token.BREAK:
		if f := b.findFrame(s.Label, false); f != nil {
			b.edge(b.cur, f.breakTo)
		}
	case token.CONTINUE:
		if f := b.findFrame(s.Label, true); f != nil && f.contTo != nil {
			b.edge(b.cur, f.contTo)
		}
	case token.GOTO:
		if s.Label != nil {
			if tgt, ok := b.labels[s.Label.Name]; ok {
				b.edge(b.cur, tgt)
			} else {
				b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: s.Label.Name})
			}
		}
	}
	// FALLTHROUGH is handled by switchStmt; anything after an
	// unconditional branch is unreachable.
	if s.Tok != token.FALLTHROUGH {
		b.cur = b.newBlock()
	}
}

func (b *cfgBuilder) pushFrame(f loopFrame) { b.frames = append(b.frames, f) }
func (b *cfgBuilder) popFrame()             { b.frames = b.frames[:len(b.frames)-1] }

// findFrame resolves the target frame of a break (any frame) or continue
// (loops only), innermost first, honoring labels.
func (b *cfgBuilder) findFrame(label *ast.Ident, loopOnly bool) *loopFrame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := &b.frames[i]
		if loopOnly && !f.isLoop {
			continue
		}
		if label == nil || f.label == label.Name {
			return f
		}
	}
	return nil
}

// isPanicStmt matches statements that terminate the path without a normal
// return: panic(...), (*testing.T).Fatal(f), log.Fatal(f), os.Exit.
func isPanicStmt(s *ast.ExprStmt) bool {
	call, ok := s.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		switch fun.Sel.Name {
		case "Fatal", "Fatalf", "Exit", "Fatalln":
			return true
		}
	}
	return false
}
