package analysis

import (
	"go/ast"
	"go/types"
)

// PolldisciplineAnalyzer enforces the scheduler's run-to-completion
// contract (paper §3.2, §5.1) on poll paths: coroutine Poll methods and
// //demi:nonalloc functions execute inside the datapath OS's cooperative
// scheduler, where a single blocking operation stalls every I/O the core
// serves. On those paths the analyzer forbids, transitively through module
// calls (PollFacts):
//
//   - channel operations (send, receive, select, range-over-channel);
//   - blocking mutex acquisition (sync.Mutex/RWMutex Lock/RLock);
//   - go statements (the scheduler owns concurrency; spawning kernel
//     threads from a poll handler defeats core partitioning);
//   - condition-less for loops with no exit (a poll must return, not spin).
//
// Offenses inherited through a callee are reported at the call site with
// the callee named, so the finding lands where the poll path enters the
// blocking code.
func PolldisciplineAnalyzer() *Analyzer {
	a := &Analyzer{
		Name: "polldiscipline",
		Doc:  "Poll methods and //demi:nonalloc functions must not block, spawn, or spin",
	}
	a.Run = func(p *Pass) { runPolldiscipline(p) }
	return a
}

const pollHint = "poll paths run inside the cooperative scheduler: return instead of blocking, and let the scheduler provide concurrency"

func runPolldiscipline(p *Pass) {
	for _, file := range p.Pkg.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := p.Pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			isPoll := fd.Name.Name == "Poll" && fd.Recv != nil
			if !isPoll && !p.Mod.IsNonAlloc(fn) {
				continue
			}
			kind := "//demi:nonalloc function"
			if isPoll {
				kind = "coroutine poll method"
			}
			reportPollFacts(p, fn, kind, p.Mod.PollFacts(fn))
		}
	}
}

func reportPollFacts(p *Pass, fn *types.Func, kind string, facts pollFacts) {
	report := func(o offense, what string) {
		if !o.found() {
			return
		}
		if o.Via != nil {
			p.Reportf(o.Pos, pollHint,
				"%s %s reaches %s via call to %s", kind, fn.Name(), what, o.Via.Name())
			return
		}
		p.Reportf(o.Pos, pollHint,
			"%s %s performs %s", kind, fn.Name(), what)
	}
	report(facts.Chan, "a channel operation")
	report(facts.Lock, "a blocking mutex acquisition")
	report(facts.Go, "a goroutine spawn")
	report(facts.Loop, "an unbounded loop")
}
