package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// OwnershipAnalyzer enforces the paper's explicit zero-copy buffer
// ownership contract (§3.1, §4.2) on *memory.Buf values:
//
//  1. Every buffer obtained from the DMA heap (Heap.Alloc, Heap.TryAlloc,
//     memory.CopyFrom, memory.TryCopyFrom) must be freed, pushed, returned,
//     or stored — a buffer that reaches no consuming use leaks its slot.
//  2. A return statement between the allocation and the buffer's first
//     consuming use leaks it on that path (the compile-time twin of the
//     chaos soak's "no leaked buffers" invariant).
//  3. A failed Push/PushTo does NOT transfer ownership: the error branch
//     of a push must free the buffer (or consume it some other way) before
//     bailing out.
//  4. A buffer that has been pushed is owned by the library OS until the
//     qtoken completes: writing through it after the push (copy into its
//     Bytes, indexed stores) races the device DMA (§4.2: UAF protection
//     does not include write protection).
//
// The memory package itself is exempt — it is the allocator and
// manipulates slot ownership by design.
func OwnershipAnalyzer() *Analyzer {
	a := &Analyzer{
		Name: "ownership",
		Doc:  "DMA buffers must be freed/pushed/returned/stored on all paths; pushed buffers are immutable",
	}
	a.Run = func(p *Pass) { runOwnership(p) }
	return a
}

// bufAllocators are the memory-package entry points that hand the caller
// an owned buffer.
var bufAllocators = map[string]bool{
	"Alloc": true, "TryAlloc": true, "CopyFrom": true, "TryCopyFrom": true,
}

// bufConsumingMethods are Buf methods that discharge the ownership
// obligation.
func bufConsumingMethod(name string) bool { return name == "Free" }

func runOwnership(p *Pass) {
	if strings.HasSuffix(p.Pkg.Path, "internal/memory") {
		return // the allocator owns its own slots
	}
	buf := p.Mod.LookupNamed("internal/memory", "Buf")
	if buf == nil {
		return
	}
	isBuf := func(t types.Type) bool {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			return false
		}
		n, ok := ptr.Elem().(*types.Named)
		return ok && n.Obj() == buf.Obj()
	}
	info := p.Pkg.Info
	isAllocator := func(call *ast.CallExpr) bool {
		fn := staticCallee(info, call)
		return fn != nil && fn.Pkg() != nil &&
			strings.HasSuffix(fn.Pkg().Path(), "internal/memory") &&
			bufAllocators[fn.Name()]
	}
	for _, file := range p.Pkg.Files {
		for _, prod := range findProducers(info, file, isBuf, isAllocator) {
			callee := exprString(prod.call.Fun)
			switch {
			case prod.dropped, prod.blank:
				p.Reportf(prod.call.Pos(), "keep the buffer and Free it when done",
					"buffer allocated by %s is discarded without Free", callee)
			case prod.obj != nil:
				checkBufferLifecycle(p, prod, callee)
			}
		}
	}
}

func checkBufferLifecycle(p *Pass, prod producer, callee string) {
	info := p.Pkg.Info
	uses := collectUses(info, prod.fn, prod.obj, bufConsumingMethod)
	var consumes []objUse
	for _, u := range uses {
		if u.consuming {
			consumes = append(consumes, u)
		}
	}
	if len(consumes) == 0 {
		p.Reportf(prod.call.Pos(),
			"Free the buffer, push it, return it, or store it for a later Free",
			"buffer %q allocated by %s is never freed, pushed, returned, or stored", prod.obj.Name(), callee)
		return
	}
	checkEarlyReturns(p, prod, consumes)
	checkPushPaths(p, prod, consumes)
}

// checkEarlyReturns flags return statements between the allocation and the
// buffer's first consuming use: on those paths the buffer leaks. Returns
// guarded by the allocation's own error (the alloc failed, so there is no
// buffer) are exempt.
func checkEarlyReturns(p *Pass, prod producer, consumes []objUse) {
	first := token.Pos(-1)
	for _, c := range consumes {
		if c.id.Pos() > prod.call.End() && (first < 0 || c.id.Pos() < first) {
			first = c.id.Pos()
		}
	}
	if first < 0 {
		return // all consuming uses are textually before the allocation (loop back-edge)
	}
	info := p.Pkg.Info
	walkStack(prod.fn, func(n ast.Node, stack []ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		if ret.Pos() <= prod.call.End() || ret.Pos() >= first {
			return true
		}
		if guardedByAllocError(info, stack, prod.errObj) {
			return true
		}
		for _, r := range ret.Results {
			if containsIdentOf(info, r, prod.obj) {
				return true
			}
		}
		p.Reportf(ret.Pos(), "Free the buffer before this return (or on a deferred path)",
			"buffer %q (allocated at line %d) leaks on this return path",
			prod.obj.Name(), p.Mod.Fset.Position(prod.call.Pos()).Line)
		return true
	})
}

// guardedByAllocError reports whether the statement sits inside an if
// branch conditioned on the allocation's error result — i.e. the path
// where no buffer was handed out.
func guardedByAllocError(info *types.Info, stack []ast.Node, errObj types.Object) bool {
	if errObj == nil {
		return false
	}
	for _, n := range stack {
		if ifs, ok := n.(*ast.IfStmt); ok && containsIdentOf(info, ifs.Cond, errObj) {
			return true
		}
	}
	return false
}

// checkPushPaths verifies rule 3 (the error branch of a push frees the
// buffer) and rule 4 (no writes through the buffer after a push).
func checkPushPaths(p *Pass, prod producer, consumes []objUse) {
	info := p.Pkg.Info
	firstPush := token.Pos(-1)
	walkStack(prod.fn, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if !isPushCall(call) || !callArgsContain(info, call, prod.obj) {
			return true
		}
		if firstPush < 0 || call.Pos() < firstPush {
			firstPush = call.Pos()
		}
		checkPushErrorBranch(p, prod, call, stack)
		return true
	})
	if firstPush >= 0 {
		checkWritesAfterPush(p, prod, firstPush)
	}
}

// isPushCall matches Push/PushTo calls — the PDPIX ownership-transfer
// points.
func isPushCall(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		return fun.Sel.Name == "Push" || fun.Sel.Name == "PushTo"
	case *ast.Ident:
		return fun.Name == "Push" || fun.Name == "PushTo"
	}
	return false
}

func callArgsContain(info *types.Info, call *ast.CallExpr, obj types.Object) bool {
	for _, arg := range call.Args {
		if containsIdentOf(info, arg, obj) {
			return true
		}
	}
	return false
}

// checkPushErrorBranch finds the `if err != nil` (or `if err == nil`)
// guard attached to a push of the tracked buffer and verifies the failure
// branch consumes it: a failed push leaves ownership with the caller.
func checkPushErrorBranch(p *Pass, prod producer, push *ast.CallExpr, stack []ast.Node) {
	info := p.Pkg.Info
	assign, ifs := pushGuard(stack, push)
	if assign == nil || ifs == nil {
		return
	}
	errObj := assignedError(info, assign)
	if errObj == nil {
		return
	}
	op, condErr := condErrorTest(info, ifs.Cond)
	if condErr != errObj {
		return
	}
	var failBranch ast.Node
	switch op {
	case token.NEQ: // if err != nil { <failure> }
		failBranch = ifs.Body
	case token.EQL: // if err == nil { <success> } else { <failure> }
		if ifs.Else != nil {
			failBranch = ifs.Else
		}
	default:
		return
	}
	if failBranch != nil {
		if branchConsumes(info, failBranch, prod.obj) {
			return
		}
		if !branchExits(failBranch) {
			// Failure path falls through; a later Free can still run.
			if consumesAfter(info, prod, ifs.End()) {
				return
			}
		}
		p.Reportf(push.Pos(), "a failed push does not transfer ownership; Free the buffer on the error path",
			"buffer %q leaks when %s fails: the error path neither frees nor stores it",
			prod.obj.Name(), exprString(push.Fun))
		return
	}
	// `if err == nil { ... }` with no else: failure falls through the if.
	if consumesAfter(info, prod, ifs.End()) {
		return
	}
	p.Reportf(push.Pos(), "a failed push does not transfer ownership; add an else branch that frees the buffer",
		"buffer %q leaks when %s fails: nothing frees it on the failure path",
		prod.obj.Name(), exprString(push.Fun))
}

// pushGuard locates the assignment capturing the push's results and the if
// statement testing its error, handling both forms:
//
//	qt, err := l.Push(...)        // assign, then if
//	if err != nil { ... }
//
//	if qt, err := l.Push(...); err != nil { ... }  // if with init
func pushGuard(stack []ast.Node, push *ast.CallExpr) (*ast.AssignStmt, *ast.IfStmt) {
	for i := len(stack) - 1; i >= 0; i-- {
		assign, ok := stack[i].(*ast.AssignStmt)
		if !ok {
			continue
		}
		if i > 0 {
			if ifs, ok := stack[i-1].(*ast.IfStmt); ok && ifs.Init == assign {
				return assign, ifs
			}
			var list []ast.Stmt
			switch blk := stack[i-1].(type) {
			case *ast.BlockStmt:
				list = blk.List
			case *ast.CaseClause:
				list = blk.Body
			case *ast.CommClause:
				list = blk.Body
			}
			for j, s := range list {
				if s == assign && j+1 < len(list) {
					if ifs, ok := list[j+1].(*ast.IfStmt); ok {
						return assign, ifs
					}
				}
			}
		}
		return assign, nil
	}
	return nil, nil
}

// assignedError returns the object bound to the error result of the
// assignment, if any.
func assignedError(info *types.Info, assign *ast.AssignStmt) types.Object {
	for _, l := range assign.Lhs {
		id, ok := l.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj != nil && isErrorType(obj.Type()) {
			return obj
		}
	}
	return nil
}

// condErrorTest decodes a `err != nil` / `err == nil` condition.
func condErrorTest(info *types.Info, cond ast.Expr) (token.Token, types.Object) {
	be, ok := cond.(*ast.BinaryExpr)
	if !ok || (be.Op != token.NEQ && be.Op != token.EQL) {
		return token.ILLEGAL, nil
	}
	id, nilSide := be.X, be.Y
	if isNilIdent(id) {
		id, nilSide = be.Y, be.X
	}
	if !isNilIdent(nilSide) {
		return token.ILLEGAL, nil
	}
	e, ok := id.(*ast.Ident)
	if !ok {
		return token.ILLEGAL, nil
	}
	obj := info.Uses[e]
	if obj == nil || !isErrorType(obj.Type()) {
		return token.ILLEGAL, nil
	}
	return be.Op, obj
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// branchConsumes reports whether the branch contains a consuming use of obj.
func branchConsumes(info *types.Info, branch ast.Node, obj types.Object) bool {
	for _, u := range collectUses(info, branch, obj, bufConsumingMethod) {
		if u.consuming {
			return true
		}
	}
	return false
}

// branchExits reports whether the branch unconditionally leaves the
// surrounding flow (return / break / continue / goto at its top level).
func branchExits(branch ast.Node) bool {
	var list []ast.Stmt
	switch b := branch.(type) {
	case *ast.BlockStmt:
		list = b.List
	case *ast.IfStmt: // else-if chain
		return branchExits(b.Body)
	default:
		return false
	}
	for _, s := range list {
		switch s.(type) {
		case *ast.ReturnStmt, *ast.BranchStmt:
			return true
		}
		if es, ok := s.(*ast.ExprStmt); ok {
			if call, ok := es.X.(*ast.CallExpr); ok {
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok && (sel.Sel.Name == "Fatal" || sel.Sel.Name == "Fatalf") {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
					return true
				}
			}
		}
	}
	return false
}

// consumesAfter reports whether any consuming use of the buffer appears
// after pos.
func consumesAfter(info *types.Info, prod producer, pos token.Pos) bool {
	for _, u := range collectUses(info, prod.fn, prod.obj, bufConsumingMethod) {
		if u.consuming && u.id.Pos() > pos {
			return true
		}
	}
	return false
}

// checkWritesAfterPush flags writes through the buffer after its first
// push: copy(b.Bytes(), ...) and indexed/sliced stores into it.
func checkWritesAfterPush(p *Pass, prod producer, pushPos token.Pos) {
	info := p.Pkg.Info
	report := func(pos token.Pos) {
		p.Reportf(pos, "marshal into the buffer before pushing it; the libOS owns it until the qtoken completes",
			"buffer %q is written after being pushed (pushed at line %d); pushed buffers are immutable until completion",
			prod.obj.Name(), p.Mod.Fset.Position(pushPos).Line)
	}
	walkStack(prod.fn, func(n ast.Node, stack []ast.Node) bool {
		switch s := n.(type) {
		case *ast.CallExpr:
			if s.Pos() <= pushPos || len(s.Args) == 0 {
				return true
			}
			if id, ok := s.Fun.(*ast.Ident); ok && id.Name == "copy" {
				if containsIdentOf(info, s.Args[0], prod.obj) {
					report(s.Pos())
				}
			}
		case *ast.AssignStmt:
			if s.Pos() <= pushPos {
				return true
			}
			for _, l := range s.Lhs {
				if id, ok := l.(*ast.Ident); ok && info.Uses[id] == prod.obj {
					continue // rebinding the variable, not writing the buffer
				}
				if _, ok := l.(*ast.Ident); ok {
					continue
				}
				if containsIdentOf(info, l, prod.obj) {
					report(s.Pos())
				}
			}
		}
		return true
	})
}

// staticCallee resolves a call to its *types.Func when the callee is a
// plain function or a method on a concrete value.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
		}
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}
