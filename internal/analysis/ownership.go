package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// OwnershipAnalyzer enforces the paper's explicit zero-copy buffer
// ownership contract (§3.1, §4.2) on *memory.Buf values:
//
//  1. Every buffer obtained from the DMA heap (Heap.Alloc, Heap.TryAlloc,
//     memory.CopyFrom, memory.TryCopyFrom) must be freed, pushed, returned,
//     or stored — a buffer that reaches no consuming use leaks its slot.
//  2. A return statement between the allocation and the buffer's first
//     consuming use leaks it on that path (the compile-time twin of the
//     chaos soak's "no leaked buffers" invariant).
//  3. A failed Push/PushTo does NOT transfer ownership: the error branch
//     of a push must free the buffer (or consume it some other way) before
//     bailing out.
//  4. A buffer that has been pushed is owned by the library OS until the
//     qtoken completes: writing through it after the push (copy into its
//     Bytes, indexed stores) races the device DMA (§4.2: UAF protection
//     does not include write protection).
//
// The memory package itself is exempt — it is the allocator and
// manipulates slot ownership by design.
//
// Since the interprocedural engine (cfg.go, summary.go) the analyzer is
// path- and call-graph-aware:
//
//   - producers include module helpers whose results carry a freshly-owned
//     buffer (OwnedResults), so `b, err := c.copyIn(p)` is tracked like a
//     direct allocation;
//   - a buffer passed to a helper that only borrows it (ParamBorrows) is
//     NOT consumed — leaks through read-only helpers are caught;
//   - a helper summarized ParamConsumesOnSuccess (a push-like transfer) is
//     held to the push contract at its call sites: the error branch must
//     free the buffer;
//   - leak detection walks the control-flow graph instead of comparing
//     source positions, so a consume on one branch no longer excuses a
//     leak on the other;
//   - helpers that consume a buffer parameter on some same-class exit
//     paths but not others (ParamMixed) are reported where they are
//     declared.
func OwnershipAnalyzer() *Analyzer {
	a := &Analyzer{
		Name: "ownership",
		Doc:  "DMA buffers must be freed/pushed/returned/stored on all paths; pushed buffers are immutable",
	}
	a.Run = func(p *Pass) { runOwnership(p, false) }
	return a
}

// ownershipAnalyzerIntra is the pre-engine, single-function variant: no
// helper summaries, position-based early-return detection. It exists so
// the regression tests can demonstrate cross-function leaks the old
// checker misses.
func ownershipAnalyzerIntra() *Analyzer {
	a := &Analyzer{
		Name: "ownership",
		Doc:  "intra-function ownership checks (regression baseline)",
	}
	a.Run = func(p *Pass) { runOwnership(p, true) }
	return a
}

// bufAllocators are the memory-package entry points that hand the caller
// an owned buffer.
var bufAllocators = map[string]bool{
	"Alloc": true, "TryAlloc": true, "CopyFrom": true, "TryCopyFrom": true,
}

// bufConsumingMethods are Buf methods that discharge the ownership
// obligation.
func bufConsumingMethod(name string) bool { return name == "Free" }

func runOwnership(p *Pass, intra bool) {
	if strings.HasSuffix(p.Pkg.Path, "internal/memory") {
		return // the allocator owns its own slots
	}
	buf := p.Mod.LookupNamed("internal/memory", "Buf")
	if buf == nil {
		return
	}
	isBuf := func(t types.Type) bool {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			return false
		}
		n, ok := ptr.Elem().(*types.Named)
		return ok && n.Obj() == buf.Obj()
	}
	info := p.Pkg.Info
	okCall := func(call *ast.CallExpr) bool {
		fn := staticCallee(info, call)
		if fn == nil {
			return false
		}
		if fn.Pkg() != nil && strings.HasSuffix(fn.Pkg().Path(), "internal/memory") && bufAllocators[fn.Name()] {
			return true
		}
		// Interprocedural: module helpers whose result carries a
		// freshly-owned buffer are producers too.
		return !intra && p.Mod.OwnedResults(fn)[trackBuf]
	}
	for _, file := range p.Pkg.Files {
		for _, prod := range findProducers(info, file, isBuf, okCall) {
			callee := exprString(prod.call.Fun)
			switch {
			case prod.dropped, prod.blank:
				p.Reportf(prod.call.Pos(), "keep the buffer and Free it when done",
					"buffer allocated by %s is discarded without Free", callee)
			case prod.obj != nil:
				checkBufferLifecycle(p, prod, callee, intra)
			}
		}
		if !intra {
			checkBufParamModes(p, file, isBuf)
		}
	}
}

func checkBufferLifecycle(p *Pass, prod producer, callee string, intra bool) {
	if prod.fn == nil {
		return // package-scope initializer: stored by construction
	}
	info := p.Pkg.Info
	var uses []objUse
	if intra {
		uses = collectUses(info, prod.fn, prod.obj, bufConsumingMethod)
	} else {
		uses = p.Mod.adjustedUses(p.Pkg, prod.fn, prod.obj, trackBuf)
	}
	var consumes []objUse
	for _, u := range uses {
		if u.consuming {
			consumes = append(consumes, u)
		}
	}
	if len(consumes) == 0 {
		p.Reportf(prod.call.Pos(),
			"Free the buffer, push it, return it, or store it for a later Free",
			"buffer %q allocated by %s is never freed, pushed, returned, or stored", prod.obj.Name(), callee)
		return
	}
	if intra {
		checkEarlyReturns(p, prod, consumes)
	} else {
		checkPathLeaks(p, prod, callee, consumes)
	}
	checkPushPaths(p, prod, consumes, intra)
}

// checkPathLeaks walks the CFG from the producing statement along paths
// with no consuming use; any return (or the end of a void function) such a
// path reaches leaks the buffer. Edges whose condition proves the buffer
// absent — the allocation's error is non-nil, or the buffer itself is nil
// — are pruned.
func checkPathLeaks(p *Pass, prod producer, callee string, consumes []objUse) {
	info := p.Pkg.Info
	// The CFG must be the innermost function body holding the allocation:
	// a buffer produced and consumed inside a closure is not answerable to
	// the enclosing function's returns.
	g := p.Mod.bodyCFG(innermostFuncBody(prod.fn, prod.call))
	if deferConsumes(info, g, prod.obj, trackBuf, p.Mod) {
		return // a deferred Free runs at every exit
	}
	start, idx := g.Lookup(prod.stmt)
	if start == nil {
		start, idx = lookupEnclosing(g, prod.call)
	}
	if start == nil {
		return // producer inside a nested function literal: out of CFG scope
	}
	consumed := consumingPositions(consumes)
	prune := func(cond ast.Expr, trueEdge bool) bool {
		if op, obj := condNilTest(info, cond); obj != nil {
			if obj == prod.errObj {
				// err != nil (true) / err == nil (false): the allocation
				// failed, no buffer was handed out.
				return (op == token.NEQ) == trueEdge
			}
			if obj == prod.obj {
				// b == nil (true) / b != nil (false): nothing to free.
				return (op == token.EQL) == trueEdge
			}
		}
		return false
	}
	leaks, fellOff := leakyExits(g, start, idx+1, consumed, prune)
	allocLine := p.Mod.Fset.Position(prod.call.Pos()).Line
	for _, ret := range leaks {
		p.Reportf(ret.Pos(), "Free the buffer before this return (or on a deferred path)",
			"buffer %q (allocated at line %d) leaks on this return path",
			prod.obj.Name(), allocLine)
	}
	if fellOff {
		p.Reportf(prod.call.Pos(), "Free the buffer on every path through the function",
			"buffer %q allocated by %s leaks on a path that falls off the end of the function",
			prod.obj.Name(), callee)
	}
}

// innermostFuncBody returns the body of the innermost function literal in
// outer that contains n, or outer itself when n is not inside a closure.
func innermostFuncBody(outer *ast.BlockStmt, n ast.Node) *ast.BlockStmt {
	body := outer
	ast.Inspect(outer, func(x ast.Node) bool {
		if fl, ok := x.(*ast.FuncLit); ok && fl.Body.Pos() <= n.Pos() && n.End() <= fl.Body.End() {
			body = fl.Body // visited outer-to-inner: the last match is innermost
		}
		return true
	})
	return body
}

// lookupEnclosing finds the CFG node (and its block position) whose source
// range covers n — the fallback when the producing statement itself was
// not appended (ValueSpec producers, if-init forms).
func lookupEnclosing(g *CFG, n ast.Node) (*Block, int) {
	for _, blk := range g.Blocks {
		for i, node := range blk.Nodes {
			if node.Pos() <= n.Pos() && n.End() <= node.End() {
				return blk, i
			}
		}
	}
	return nil, -1
}

// checkBufParamModes reports helpers that treat an owned buffer parameter
// inconsistently: consumed on some same-class exit paths, leaked on
// others. Borrowing (no path consumes) and transfer (every success path
// consumes) are both legitimate contracts; mixing them is a bug in the
// helper.
func checkBufParamModes(p *Pass, file *ast.File, isBuf func(types.Type) bool) {
	for _, d := range file.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		fn, ok := p.Pkg.Info.Defs[fd.Name].(*types.Func)
		if !ok {
			continue
		}
		for i, info := range p.Mod.ParamModes(fn) {
			if info.Mode != ParamMixed {
				continue
			}
			sig := fn.Type().(*types.Signature)
			name := sig.Params().At(i).Name()
			if !isBuf(sig.Params().At(i).Type()) {
				continue // qtoken params are the qtoken analyzer's business
			}
			for _, ret := range info.Leaks {
				p.Reportf(ret.Pos(), "consume the parameter on every path (transfer) or on none (borrow)",
					"buffer parameter %q of %s is freed or transferred on some paths but leaks on this return path",
					name, fd.Name.Name)
			}
			if info.FallsOff {
				p.Reportf(fd.Body.Rbrace, "consume the parameter on every path (transfer) or on none (borrow)",
					"buffer parameter %q of %s is freed or transferred on some paths but leaks when the function falls off the end",
					name, fd.Name.Name)
			}
		}
	}
}

// checkEarlyReturns flags return statements between the allocation and the
// buffer's first consuming use: on those paths the buffer leaks. Returns
// guarded by the allocation's own error (the alloc failed, so there is no
// buffer) are exempt.
func checkEarlyReturns(p *Pass, prod producer, consumes []objUse) {
	first := token.Pos(-1)
	for _, c := range consumes {
		if c.id.Pos() > prod.call.End() && (first < 0 || c.id.Pos() < first) {
			first = c.id.Pos()
		}
	}
	if first < 0 {
		return // all consuming uses are textually before the allocation (loop back-edge)
	}
	info := p.Pkg.Info
	walkStack(prod.fn, func(n ast.Node, stack []ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		if ret.Pos() <= prod.call.End() || ret.Pos() >= first {
			return true
		}
		if guardedByAllocError(info, stack, prod.errObj) {
			return true
		}
		for _, r := range ret.Results {
			if containsIdentOf(info, r, prod.obj) {
				return true
			}
		}
		p.Reportf(ret.Pos(), "Free the buffer before this return (or on a deferred path)",
			"buffer %q (allocated at line %d) leaks on this return path",
			prod.obj.Name(), p.Mod.Fset.Position(prod.call.Pos()).Line)
		return true
	})
}

// guardedByAllocError reports whether the statement sits inside an if
// branch conditioned on the allocation's error result — i.e. the path
// where no buffer was handed out.
func guardedByAllocError(info *types.Info, stack []ast.Node, errObj types.Object) bool {
	if errObj == nil {
		return false
	}
	for _, n := range stack {
		if ifs, ok := n.(*ast.IfStmt); ok && containsIdentOf(info, ifs.Cond, errObj) {
			return true
		}
	}
	return false
}

// checkPushPaths verifies rule 3 (the error branch of a push frees the
// buffer) and rule 4 (no writes through the buffer after a push). In
// interprocedural mode the same error-branch contract is enforced at call
// sites of any helper summarized ParamConsumesOnSuccess — a push-like
// transfer wrapped in module code.
func checkPushPaths(p *Pass, prod producer, consumes []objUse, intra bool) {
	info := p.Pkg.Info
	firstPush := token.Pos(-1)
	walkStack(prod.fn, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if !callArgsContain(info, call, prod.obj) {
			return true
		}
		if isPushCall(call) {
			if firstPush < 0 || call.Pos() < firstPush {
				firstPush = call.Pos()
			}
			checkPushErrorBranch(p, prod, call, stack)
			return true
		}
		if intra {
			return true
		}
		// The buffer flows (as a direct argument) into a helper that
		// consumes it only on success: its failure branch is a push-failure
		// branch and must discharge ownership.
		for argIdx, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && info.Uses[id] == prod.obj {
				if mode, _ := p.Mod.ParamModeAt(p.Pkg, call, argIdx); mode == ParamConsumesOnSuccess {
					checkPushErrorBranch(p, prod, call, stack)
				}
			}
		}
		return true
	})
	if firstPush >= 0 {
		checkWritesAfterPush(p, prod, firstPush)
	}
}

// isPushCall matches Push/PushTo calls — the PDPIX ownership-transfer
// points.
func isPushCall(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		return fun.Sel.Name == "Push" || fun.Sel.Name == "PushTo"
	case *ast.Ident:
		return fun.Name == "Push" || fun.Name == "PushTo"
	}
	return false
}

func callArgsContain(info *types.Info, call *ast.CallExpr, obj types.Object) bool {
	for _, arg := range call.Args {
		if containsIdentOf(info, arg, obj) {
			return true
		}
	}
	return false
}

// checkPushErrorBranch finds the `if err != nil` (or `if err == nil`)
// guard attached to a push of the tracked buffer and verifies the failure
// branch consumes it: a failed push leaves ownership with the caller.
func checkPushErrorBranch(p *Pass, prod producer, push *ast.CallExpr, stack []ast.Node) {
	info := p.Pkg.Info
	assign, ifs := pushGuard(stack, push)
	if assign == nil || ifs == nil {
		return
	}
	errObj := assignedError(info, assign)
	if errObj == nil {
		return
	}
	op, condErr := condErrorTest(info, ifs.Cond)
	if condErr != errObj {
		return
	}
	var failBranch ast.Node
	switch op {
	case token.NEQ: // if err != nil { <failure> }
		failBranch = ifs.Body
	case token.EQL: // if err == nil { <success> } else { <failure> }
		if ifs.Else != nil {
			failBranch = ifs.Else
		}
	default:
		return
	}
	if failBranch != nil {
		if branchConsumes(info, failBranch, prod.obj) {
			return
		}
		if !branchExits(failBranch) {
			// Failure path falls through; a later Free can still run.
			if consumesAfter(info, prod, ifs.End()) {
				return
			}
		}
		p.Reportf(push.Pos(), "a failed push does not transfer ownership; Free the buffer on the error path",
			"buffer %q leaks when %s fails: the error path neither frees nor stores it",
			prod.obj.Name(), exprString(push.Fun))
		return
	}
	// `if err == nil { ... }` with no else: failure falls through the if.
	if consumesAfter(info, prod, ifs.End()) {
		return
	}
	p.Reportf(push.Pos(), "a failed push does not transfer ownership; add an else branch that frees the buffer",
		"buffer %q leaks when %s fails: nothing frees it on the failure path",
		prod.obj.Name(), exprString(push.Fun))
}

// pushGuard locates the assignment capturing the push's results and the if
// statement testing its error, handling both forms:
//
//	qt, err := l.Push(...)        // assign, then if
//	if err != nil { ... }
//
//	if qt, err := l.Push(...); err != nil { ... }  // if with init
func pushGuard(stack []ast.Node, push *ast.CallExpr) (*ast.AssignStmt, *ast.IfStmt) {
	for i := len(stack) - 1; i >= 0; i-- {
		assign, ok := stack[i].(*ast.AssignStmt)
		if !ok {
			continue
		}
		if i > 0 {
			if ifs, ok := stack[i-1].(*ast.IfStmt); ok && ifs.Init == assign {
				return assign, ifs
			}
			var list []ast.Stmt
			switch blk := stack[i-1].(type) {
			case *ast.BlockStmt:
				list = blk.List
			case *ast.CaseClause:
				list = blk.Body
			case *ast.CommClause:
				list = blk.Body
			}
			for j, s := range list {
				if s == assign && j+1 < len(list) {
					if ifs, ok := list[j+1].(*ast.IfStmt); ok {
						return assign, ifs
					}
				}
			}
		}
		return assign, nil
	}
	return nil, nil
}

// assignedError returns the object bound to the error result of the
// assignment, if any.
func assignedError(info *types.Info, assign *ast.AssignStmt) types.Object {
	for _, l := range assign.Lhs {
		id, ok := l.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj != nil && isErrorType(obj.Type()) {
			return obj
		}
	}
	return nil
}

// condNilTest decodes an `x != nil` / `x == nil` condition against any
// identifier, returning the comparison operator and the object tested.
func condNilTest(info *types.Info, cond ast.Expr) (token.Token, types.Object) {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.NEQ && be.Op != token.EQL) {
		return token.ILLEGAL, nil
	}
	id, nilSide := be.X, be.Y
	if isNilIdent(id) {
		id, nilSide = be.Y, be.X
	}
	if !isNilIdent(nilSide) {
		return token.ILLEGAL, nil
	}
	e, ok := ast.Unparen(id).(*ast.Ident)
	if !ok {
		return token.ILLEGAL, nil
	}
	obj := info.Uses[e]
	if obj == nil {
		return token.ILLEGAL, nil
	}
	return be.Op, obj
}

// condErrorTest decodes a `err != nil` / `err == nil` condition.
func condErrorTest(info *types.Info, cond ast.Expr) (token.Token, types.Object) {
	be, ok := cond.(*ast.BinaryExpr)
	if !ok || (be.Op != token.NEQ && be.Op != token.EQL) {
		return token.ILLEGAL, nil
	}
	id, nilSide := be.X, be.Y
	if isNilIdent(id) {
		id, nilSide = be.Y, be.X
	}
	if !isNilIdent(nilSide) {
		return token.ILLEGAL, nil
	}
	e, ok := id.(*ast.Ident)
	if !ok {
		return token.ILLEGAL, nil
	}
	obj := info.Uses[e]
	if obj == nil || !isErrorType(obj.Type()) {
		return token.ILLEGAL, nil
	}
	return be.Op, obj
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// branchConsumes reports whether the branch contains a consuming use of obj.
func branchConsumes(info *types.Info, branch ast.Node, obj types.Object) bool {
	for _, u := range collectUses(info, branch, obj, bufConsumingMethod) {
		if u.consuming {
			return true
		}
	}
	return false
}

// branchExits reports whether the branch unconditionally leaves the
// surrounding flow (return / break / continue / goto at its top level).
func branchExits(branch ast.Node) bool {
	var list []ast.Stmt
	switch b := branch.(type) {
	case *ast.BlockStmt:
		list = b.List
	case *ast.IfStmt: // else-if chain
		return branchExits(b.Body)
	default:
		return false
	}
	for _, s := range list {
		switch s.(type) {
		case *ast.ReturnStmt, *ast.BranchStmt:
			return true
		}
		if es, ok := s.(*ast.ExprStmt); ok {
			if call, ok := es.X.(*ast.CallExpr); ok {
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok && (sel.Sel.Name == "Fatal" || sel.Sel.Name == "Fatalf") {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
					return true
				}
			}
		}
	}
	return false
}

// consumesAfter reports whether any consuming use of the buffer appears
// after pos.
func consumesAfter(info *types.Info, prod producer, pos token.Pos) bool {
	for _, u := range collectUses(info, prod.fn, prod.obj, bufConsumingMethod) {
		if u.consuming && u.id.Pos() > pos {
			return true
		}
	}
	return false
}

// checkWritesAfterPush flags writes through the buffer after its first
// push: copy(b.Bytes(), ...) and indexed/sliced stores into it.
func checkWritesAfterPush(p *Pass, prod producer, pushPos token.Pos) {
	info := p.Pkg.Info
	report := func(pos token.Pos) {
		p.Reportf(pos, "marshal into the buffer before pushing it; the libOS owns it until the qtoken completes",
			"buffer %q is written after being pushed (pushed at line %d); pushed buffers are immutable until completion",
			prod.obj.Name(), p.Mod.Fset.Position(pushPos).Line)
	}
	walkStack(prod.fn, func(n ast.Node, stack []ast.Node) bool {
		switch s := n.(type) {
		case *ast.CallExpr:
			if s.Pos() <= pushPos || len(s.Args) == 0 {
				return true
			}
			if id, ok := s.Fun.(*ast.Ident); ok && id.Name == "copy" {
				if containsIdentOf(info, s.Args[0], prod.obj) {
					report(s.Pos())
				}
			}
		case *ast.AssignStmt:
			if s.Pos() <= pushPos {
				return true
			}
			for _, l := range s.Lhs {
				if id, ok := l.(*ast.Ident); ok && info.Uses[id] == prod.obj {
					continue // rebinding the variable, not writing the buffer
				}
				if _, ok := l.(*ast.Ident); ok {
					continue
				}
				if containsIdentOf(info, l, prod.obj) {
					report(s.Pos())
				}
			}
		}
		return true
	})
}

// staticCallee resolves a call to its *types.Func when the callee is a
// plain function or a method on a concrete value.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
		}
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}
