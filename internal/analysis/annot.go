package analysis

import (
	"go/ast"
	"go/types"
	"strings"
	"time"
)

// annot.go indexes the demi-vet source annotations beyond //demi:nonalloc:
//
//	//demi:stateguard [rationale]     on a struct field: the field may not
//	                                  be written on any path that returns a
//	                                  non-nil error (complete-or-error).
//	//demi:budget=<duration> [why]    on a function: its static worst-case
//	                                  cost estimate must stay within the
//	                                  budget (e.g. //demi:budget=900ns).
//	//demi:carrier [rationale]        on a struct type: its exported fields
//	                                  are sanctioned transfer records for
//	                                  tracked values (SGArray, QEvent), not
//	                                  capability escapes.
//
// Grammar, as for //demi:nonalloc: the marker must start the comment line;
// anything after it on the same line is free-form rationale. For budget,
// the value is attached with '=' and parsed by time.ParseDuration.

// demiMarker scans a comment group for a //demi:<name> line, returning the
// text after the marker ("" when the marker stands alone) and whether it
// was found. For value-carrying markers pass name with the '=' ("budget=").
func demiMarker(doc *ast.CommentGroup, name string) (string, bool) {
	if doc == nil {
		return "", false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if !strings.HasPrefix(text, "demi:"+name) {
			continue
		}
		rest := text[len("demi:"+name):]
		if strings.HasSuffix(name, "=") {
			// Value marker: everything up to the first space is the value.
			if v, _, _ := strings.Cut(rest, " "); v != "" {
				return v, true
			}
			continue
		}
		if rest == "" || strings.HasPrefix(rest, " ") {
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}

// annotIndex scans (or, after fixture loads, extends) the annotation
// indexes over every loaded package. Like index(), it is incremental and
// must only run single-threaded (Precompute calls it).
func (m *Module) annotIndex() {
	s := m.summaryState()
	for ; s.annotIndexed < len(m.Pkgs); s.annotIndexed++ {
		p := m.Pkgs[s.annotIndexed]
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if v, ok := demiMarker(d.Doc, "budget="); ok {
						if dur, err := time.ParseDuration(v); err == nil {
							if fn, ok := p.Info.Defs[d.Name].(*types.Func); ok {
								s.budgets[fn] = Cost(dur.Nanoseconds())
							}
						}
					}
				case *ast.GenDecl:
					m.indexTypeAnnotations(s, p, d)
				}
			}
		}
	}
}

func (m *Module) indexTypeAnnotations(s *summaries, p *Package, d *ast.GenDecl) {
	for _, spec := range d.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		// A sole type's doc comment attaches to the GenDecl; grouped
		// (parenthesized) types carry their own.
		doc := ts.Doc
		if doc == nil && len(d.Specs) == 1 {
			doc = d.Doc
		}
		if _, ok := demiMarker(doc, "carrier"); ok {
			if tn, ok := p.Info.Defs[ts.Name].(*types.TypeName); ok {
				s.carriers[tn] = true
			}
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			continue
		}
		for _, field := range st.Fields.List {
			_, inDoc := demiMarker(field.Doc, "stateguard")
			_, inLine := demiMarker(field.Comment, "stateguard")
			if !inDoc && !inLine {
				continue
			}
			for _, name := range field.Names {
				if v, ok := p.Info.Defs[name].(*types.Var); ok {
					s.guarded[v] = true
				}
			}
		}
	}
}

// IsGuardedField reports whether v is a //demi:stateguard struct field.
// Only valid after Precompute.
func (m *Module) IsGuardedField(v *types.Var) bool {
	return m.sums != nil && m.sums.guarded[v]
}

// HasGuardedFields reports whether any //demi:stateguard field is indexed
// (lets the stateguard analyzer skip modules without annotations).
func (m *Module) HasGuardedFields() bool {
	return m.sums != nil && len(m.sums.guarded) > 0
}

// BudgetOf returns fn's //demi:budget annotation. Only valid after
// Precompute.
func (m *Module) BudgetOf(fn *types.Func) (Cost, bool) {
	if m.sums == nil {
		return 0, false
	}
	c, ok := m.sums.budgets[fn]
	return c, ok
}

// IsCarrier reports whether the named type is annotated //demi:carrier.
// Only valid after Precompute.
func (m *Module) IsCarrier(tn *types.TypeName) bool {
	return m.sums != nil && m.sums.carriers[tn]
}
