package analysis

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"testing"
)

// summary_test.go asserts on the interprocedural engine's fixpoint
// directly, over the sumfix fixture: parameter modes, owned results, and
// cost estimates — including convergence under recursion and mutual
// recursion, which a naive bottom-up pass would either loop on or
// misclassify.

func loadSumfix(t *testing.T) (*Module, *Package) {
	t.Helper()
	m, _ := loadSharedModule(t)
	pkg, err := m.LoadDir(filepath.Join("testdata", "src", "sumfix"))
	if err != nil {
		t.Fatalf("loading sumfix: %v", err)
	}
	return m, pkg
}

func funcNamed(t *testing.T, pkg *Package, name string) *types.Func {
	t.Helper()
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					return fn
				}
			}
		}
	}
	t.Fatalf("function %s not found in %s", name, pkg.Path)
	return nil
}

func TestParamModes(t *testing.T) {
	m, pkg := loadSumfix(t)
	cases := []struct {
		fn   string
		mode ParamMode
	}{
		{"blen", ParamBorrows},
		{"bfree", ParamConsumes},
		{"deferFree", ParamConsumes}, // the defer discharges every exit
		{"maybeFree", ParamMixed},
		{"pingFree", ParamConsumes}, // via mutual recursion with pongFree
		{"pongFree", ParamConsumes},
	}
	for _, c := range cases {
		info := m.ParamModes(funcNamed(t, pkg, c.fn))[0]
		if info == nil {
			t.Errorf("%s: no summary for the buffer parameter", c.fn)
			continue
		}
		if info.Mode != c.mode {
			t.Errorf("%s buffer param mode = %d, want %d", c.fn, info.Mode, c.mode)
		}
	}
}

func TestParamModeMixedLeaks(t *testing.T) {
	m, pkg := loadSumfix(t)
	info := m.ParamModes(funcNamed(t, pkg, "maybeFree"))[0]
	if info == nil || info.Mode != ParamMixed {
		t.Fatalf("maybeFree: mode = %+v, want Mixed", info)
	}
	if len(info.Leaks) != 1 {
		t.Fatalf("maybeFree: %d leaky returns recorded, want 1 (the return 0 path)", len(info.Leaks))
	}
	if info.FallsOff {
		t.Error("maybeFree: FallsOff set, but every path returns explicitly")
	}
}

func TestOwnedResults(t *testing.T) {
	m, pkg := loadSumfix(t)
	cases := []struct {
		fn    string
		owned bool
	}{
		{"wrapAlloc", true},
		{"rewrap", true}, // provenance follows the local through the second hop
		{"passthrough", false},
		{"blen", false},
	}
	for _, c := range cases {
		if got := m.OwnedResults(funcNamed(t, pkg, c.fn))[trackBuf]; got != c.owned {
			t.Errorf("OwnedResults(%s)[buf] = %v, want %v", c.fn, got, c.owned)
		}
	}
}

func TestCostEstimateRecursion(t *testing.T) {
	m, pkg := loadSumfix(t)
	for _, fn := range []string{"rec", "even", "odd"} {
		if got := m.CostEstimate(funcNamed(t, pkg, fn)); got != CostUnbounded {
			t.Errorf("CostEstimate(%s) = %d, want CostUnbounded", fn, got)
		}
	}
	if got := m.CostEstimate(funcNamed(t, pkg, "straight")); got <= 0 {
		t.Errorf("CostEstimate(straight) = %d, want a positive bounded cost", got)
	}
}

// TestSummaryFixpointStable re-queries every summary after a Precompute
// pass: the frozen memos must agree with the values computed on demand
// (the parallel analysis phase depends on this).
func TestSummaryFixpointStable(t *testing.T) {
	m, pkg := loadSumfix(t)
	before := make(map[string]ParamMode)
	for _, name := range []string{"blen", "bfree", "maybeFree", "pingFree"} {
		before[name] = m.ParamModes(funcNamed(t, pkg, name))[0].Mode
	}
	m.Precompute()
	for name, want := range before {
		if got := m.ParamModes(funcNamed(t, pkg, name))[0].Mode; got != want {
			t.Errorf("%s: mode changed across Precompute: %d -> %d", name, want, got)
		}
	}
}
