package analysis

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"
)

// An Allowlist holds the audited exceptions to analyzer findings. Format,
// one entry per line:
//
//	<analyzer> <file-suffix> <message-substring>   # rationale
//
// A finding is suppressed when its analyzer matches exactly, its
// module-relative file path ends in <file-suffix>, and its message contains
// <message-substring>. Blank lines and lines starting with # are ignored;
// a trailing " # ..." comment documents why the exception is sound (and is
// required by convention — an allowlist entry without a rationale is a
// smell). Entries that suppress nothing are reported by Unused so the list
// can only shrink.
type Allowlist struct {
	Entries []AllowEntry
}

// An AllowEntry is one parsed allowlist line.
type AllowEntry struct {
	Analyzer string
	File     string // suffix match against the finding's module-relative path
	Contains string // substring match against the finding's message
	Line     int    // line in the allowlist file, for stale-entry reports
	used     bool
}

func (e AllowEntry) matches(f Finding) bool {
	return e.Analyzer == f.Analyzer &&
		strings.HasSuffix(f.File, e.File) &&
		strings.Contains(f.Message, e.Contains)
}

// LoadAllowlist reads an allowlist file. A missing file yields an empty
// list, so repositories without exceptions need no file at all.
func LoadAllowlist(path string) (*Allowlist, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return &Allowlist{}, nil
		}
		return nil, err
	}
	defer f.Close()
	return ParseAllowlist(f, path)
}

// ParseAllowlist parses allowlist entries from r; name labels parse errors.
func ParseAllowlist(r io.Reader, name string) (*Allowlist, error) {
	al := &Allowlist{}
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if i := strings.Index(text, "#"); i >= 0 {
			text = text[:i]
		}
		text = strings.TrimSpace(text)
		if text == "" {
			continue
		}
		parts := strings.SplitN(text, " ", 3)
		if len(parts) < 3 {
			return nil, fmt.Errorf("%s:%d: want \"<analyzer> <file-suffix> <message-substring>\", got %q", name, line, text)
		}
		al.Entries = append(al.Entries, AllowEntry{
			Analyzer: parts[0],
			File:     parts[1],
			Contains: strings.TrimSpace(parts[2]),
			Line:     line,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return al, nil
}

// Filter returns the findings not suppressed by the allowlist, marking the
// entries that fired.
func (al *Allowlist) Filter(findings []Finding) []Finding {
	if al == nil || len(al.Entries) == 0 {
		return findings
	}
	kept := findings[:0]
	for _, f := range findings {
		suppressed := false
		for i := range al.Entries {
			if al.Entries[i].matches(f) {
				al.Entries[i].used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, f)
		}
	}
	return kept
}

// Unused returns the entries that suppressed no finding in the last Filter
// — stale exceptions that should be deleted.
func (al *Allowlist) Unused() []AllowEntry {
	if al == nil {
		return nil
	}
	var out []AllowEntry
	for _, e := range al.Entries {
		if !e.used {
			out = append(out, e)
		}
	}
	return out
}
