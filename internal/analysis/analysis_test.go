package analysis

import (
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// The module is loaded once and shared: whole-module type-checking from
// source costs ~2 s, and every test needs the same packages. modPkgs
// snapshots the module's own packages before fixture loads append to
// mod.Pkgs, so TestModuleClean analyzes exactly what demi-vet ships.
var (
	modOnce sync.Once
	mod     *Module
	modPkgs []*Package
	modErr  error
)

func loadSharedModule(t *testing.T) (*Module, []*Package) {
	t.Helper()
	modOnce.Do(func() {
		mod, modErr = LoadModule(".")
		if modErr == nil {
			modPkgs = append([]*Package(nil), mod.Pkgs...)
		}
	})
	if modErr != nil {
		t.Fatalf("LoadModule: %v", modErr)
	}
	return mod, modPkgs
}

// A want is one expected-finding comment: // want `regexp`.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantRx = regexp.MustCompile("want `([^`]+)`")

// parseWants extracts the want comments of a fixture package.
func parseWants(t *testing.T, m *Module, pkg *Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				match := wantRx.FindStringSubmatch(c.Text)
				if match == nil {
					continue
				}
				pos := m.Fset.Position(c.Slash)
				re, err := regexp.Compile(match[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp: %v", pos.Filename, pos.Line, err)
				}
				wants = append(wants, &want{file: filepath.Base(pos.Filename), line: pos.Line, re: re})
			}
		}
	}
	return wants
}

// runFixture analyzes one testdata package with one analyzer and checks
// the findings against its want comments, both directions.
func runFixture(t *testing.T, fixture string, as ...*Analyzer) {
	t.Helper()
	m, _ := loadSharedModule(t)
	pkg, err := m.LoadDir(filepath.Join("testdata", "src", fixture))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	findings := Run(m, []*Package{pkg}, as)
	wants := parseWants(t, m, pkg)
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no want comments", fixture)
	}
	for _, f := range findings {
		ok := false
		for _, w := range wants {
			if w.line == f.Pos.Line && w.file == filepath.Base(f.File) && w.re.MatchString(f.Message) {
				w.matched = true
				ok = true
			}
		}
		if !ok {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected a finding matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func TestQTokenFixture(t *testing.T) {
	runFixture(t, "qtokenfix", QTokenAnalyzer())
}

func TestOwnershipFixture(t *testing.T) {
	runFixture(t, "ownerfix", OwnershipAnalyzer())
}

// TestCatmemOwnershipFixture pins the shared-memory handoff contract:
// successful pushes consume the SGA (no Free by the pusher), call-level
// push errors leave ownership with the caller, and handed-off buffers are
// immutable to the pusher.
func TestCatmemOwnershipFixture(t *testing.T) {
	runFixture(t, "catmemfix", OwnershipAnalyzer())
}

// TestTenantFixture pins the multi-tenant error-path contracts: a
// quota-rejected Push (ErrTenantQuota) leaves buffer ownership with the
// caller, and a forged-token rejection (ErrBadQToken) consumes nothing —
// the caller's own outstanding tokens must still be redeemed. The fixture
// mixes ownership and qtoken findings, so both analyzers run over it.
func TestTenantFixture(t *testing.T) {
	runFixture(t, "tenantfix", OwnershipAnalyzer(), QTokenAnalyzer())
}

func TestDeterminismFixture(t *testing.T) {
	runFixture(t, "determfix", DeterminismAnalyzer([]string{"determfix"}))
}

// TestRackFixture pins the determinism contract over the rack subsystem's
// temptations: wall-clock placement stamps, math/rand tie breaking, and
// map-ordered telemetry output.
func TestRackFixture(t *testing.T) {
	runFixture(t, "rackfix", DeterminismAnalyzer([]string{"rackfix"}))
}

func TestNonAllocFixture(t *testing.T) {
	runFixture(t, "nonallocfix", NonAllocAnalyzer())
}

// TestDTraceFixture pins the tracer record-path contract: arena events are
// written in place, retention appends are capacity-guarded, and labels are
// pre-interned ids — per-event map writes, appends, and string building are
// findings.
func TestDTraceFixture(t *testing.T) {
	runFixture(t, "dtracefix", NonAllocAnalyzer())
}

// TestStateguardFixture pins the complete-or-error mutation contract on
// //demi:stateguard fields, including path-sensitive guard placement.
func TestStateguardFixture(t *testing.T) {
	runFixture(t, "stateguardfix", StateguardAnalyzer())
}

// TestPolldisciplineFixture pins the run-to-completion contract on Poll
// methods and //demi:nonalloc functions: channel ops, helper-reached
// mutexes, goroutine spawns, and unbounded loops.
func TestPolldisciplineFixture(t *testing.T) {
	runFixture(t, "pollfix", PolldisciplineAnalyzer())
}

// TestCapescapeFixture pins capability confinement: package-variable
// stores, non-//demi:carrier exported fields, and escaping closures are
// findings; carriers, unexported fields, and scheduler-argument closures
// are not.
func TestCapescapeFixture(t *testing.T) {
	runFixture(t, "capescapefix", CapescapeAnalyzer())
}

// TestCyclebudgetFixture pins the //demi:budget gate against the static
// cost model, including the unbounded-recursion case.
func TestCyclebudgetFixture(t *testing.T) {
	runFixture(t, "budgetfix", CyclebudgetAnalyzer())
}

// TestInterprocFixture pins the interprocedural engine's headline wins:
// leaks through borrowing helpers, owned results of wrapper allocators,
// path-sensitive leaks of helper-produced buffers, and tokens stranded
// through inspection helpers.
func TestInterprocFixture(t *testing.T) {
	runFixture(t, "interprocfix", OwnershipAnalyzer(), QTokenAnalyzer())
}

// TestInterprocRegression is the tentpole's acceptance proof: every leak
// in interprocfix crosses a function boundary, so the pre-engine
// intra-function ownership checker reports nothing there while the
// summary-driven analyzer reports them all.
func TestInterprocRegression(t *testing.T) {
	m, _ := loadSharedModule(t)
	pkg, err := m.LoadDir(filepath.Join("testdata", "src", "interprocfix"))
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	intra := Run(m, []*Package{pkg}, []*Analyzer{ownershipAnalyzerIntra()})
	for _, f := range intra {
		t.Errorf("intra-function checker unexpectedly found: %s", f)
	}
	inter := Run(m, []*Package{pkg}, []*Analyzer{OwnershipAnalyzer()})
	if len(inter) < 3 {
		t.Fatalf("interprocedural checker found %d leak(s), want at least 3: %v", len(inter), inter)
	}
	wantSub := "is never freed, pushed, returned, or stored"
	found := false
	for _, f := range inter {
		if strings.Contains(f.Message, wantSub) {
			found = true
		}
	}
	if !found {
		t.Errorf("no interprocedural finding matches %q in %v", wantSub, inter)
	}
}

// TestModuleClean is the acceptance gate: demi-vet with the checked-in
// allowlist reports nothing on the module itself, and every allowlist
// entry still earns its keep.
func TestModuleClean(t *testing.T) {
	m, pkgs := loadSharedModule(t)
	allow, err := LoadAllowlist(filepath.Join(m.Root, "analysis.allow"))
	if err != nil {
		t.Fatalf("LoadAllowlist: %v", err)
	}
	findings := allow.Filter(Run(m, pkgs, DefaultAnalyzers()))
	for _, f := range findings {
		t.Errorf("module is not demi-vet clean: %s", f)
	}
	for _, e := range allow.Unused() {
		t.Errorf("analysis.allow:%d: stale entry (%s %s %q) suppresses nothing", e.Line, e.Analyzer, e.File, e.Contains)
	}
}

func TestAllowlistParse(t *testing.T) {
	al, err := ParseAllowlist(strings.NewReader(`
# comment
determinism internal/sim/time.go time.Now  # rationale
nonalloc sched.go dynamic call
`), "test")
	if err != nil {
		t.Fatalf("ParseAllowlist: %v", err)
	}
	if len(al.Entries) != 2 {
		t.Fatalf("got %d entries, want 2", len(al.Entries))
	}
	if e := al.Entries[0]; e.Analyzer != "determinism" || e.File != "internal/sim/time.go" || e.Contains != "time.Now" {
		t.Errorf("entry 0 parsed as %+v", e)
	}
	if e := al.Entries[1]; e.Contains != "dynamic call" {
		t.Errorf("entry 1 message substring = %q, want with spaces", e.Contains)
	}

	if _, err := ParseAllowlist(strings.NewReader("tooshort entry\n"), "test"); err == nil {
		t.Error("malformed line should be a parse error")
	}
}

func TestAllowlistFilterAndUnused(t *testing.T) {
	al := &Allowlist{Entries: []AllowEntry{
		{Analyzer: "qtoken", File: "a.go", Contains: "dropped", Line: 1},
		{Analyzer: "qtoken", File: "b.go", Contains: "dropped", Line: 2},
	}}
	findings := []Finding{
		{Analyzer: "qtoken", File: "pkg/a.go", Message: "qtoken is dropped"},
		{Analyzer: "ownership", File: "pkg/a.go", Message: "buffer dropped"},
	}
	kept := al.Filter(findings)
	if len(kept) != 1 || kept[0].Analyzer != "ownership" {
		t.Fatalf("Filter kept %v, want only the ownership finding", kept)
	}
	unused := al.Unused()
	if len(unused) != 1 || unused[0].Line != 2 {
		t.Fatalf("Unused = %v, want only the b.go entry", unused)
	}
}

func TestLoadAllowlistMissingFile(t *testing.T) {
	al, err := LoadAllowlist(filepath.Join(t.TempDir(), "nope.allow"))
	if err != nil {
		t.Fatalf("missing allowlist should be empty, got error %v", err)
	}
	if len(al.Entries) != 0 {
		t.Fatalf("missing allowlist has %d entries", len(al.Entries))
	}
}
