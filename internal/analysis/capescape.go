package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CapescapeAnalyzer enforces capability confinement (paper §3.1, §6):
// *memory.Buf, core.QToken, and *tenant.View values are capabilities — a
// buffer names a DMA-pinned slot, a token names an outstanding op owned by
// a tenant, a view IS a tenant's entire datapath authority. A capability
// that escapes its owning call's scope outlives the checks that minted it:
//
//   - stored in a package-level variable (any goroutine can now replay it);
//   - stored through an exported struct field of a type NOT annotated
//     //demi:carrier (exported fields are API surface; only audited
//     transfer records like SGArray/QEvent/CQE may carry capabilities);
//   - captured by a closure that outlives the call — one that is returned,
//     stored in a package variable or struct field, or launched with go.
//
// The memory, core, and tenant packages themselves are exempt: they are
// the authorities that mint and redeem these capabilities.
func CapescapeAnalyzer() *Analyzer {
	a := &Analyzer{
		Name: "capescape",
		Doc:  "tracked capabilities must not escape to package vars, exported non-carrier fields, or escaping closures",
	}
	a.Run = func(p *Pass) { runCapescape(p) }
	return a
}

const capescapeHint = "keep capabilities function-scoped; for a sanctioned transfer record, annotate the carrying struct //demi:carrier with a rationale"

// capExemptSuffixes are the capability authorities: the packages that
// implement the tracked types manage their lifetime by design.
var capExemptSuffixes = []string{"internal/memory", "internal/core", "internal/tenant"}

func runCapescape(p *Pass) {
	for _, sfx := range capExemptSuffixes {
		if strings.HasSuffix(p.Pkg.Path, sfx) {
			return
		}
	}
	c := &capChecker{p: p, view: p.Mod.LookupNamed("internal/tenant", "View")}
	if s := p.Mod.summaryState(); s.trackedNamed[trackBuf] == nil && s.trackedNamed[trackQTok] == nil && c.view == nil {
		return
	}
	info := p.Pkg.Info
	for _, file := range p.Pkg.Files {
		walkStack(file, func(n ast.Node, stack []ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				c.checkAssign(x)
			case *ast.CompositeLit:
				c.checkCompositeLit(x)
			case *ast.FuncLit:
				c.checkFuncLit(x, stack)
			}
			_ = info
			return true
		})
	}
}

type capChecker struct {
	p    *Pass
	view *types.Named
}

// capKind labels a capability type, or returns "".
func (c *capChecker) capKind(t types.Type) string {
	if t == nil {
		return ""
	}
	s := c.p.Mod.summaryState()
	if k, ok := s.trackedKind(t); ok {
		if k == trackBuf {
			return "buffer"
		}
		return "qtoken"
	}
	if ptr, ok := t.(*types.Pointer); ok && c.view != nil {
		if n, ok := ptr.Elem().(*types.Named); ok && n.Obj() == c.view.Obj() {
			return "tenant view"
		}
	}
	return ""
}

// exprCapKind labels the capability an expression evaluates to, looking
// through append(dst, caps...) which stores its arguments.
func (c *capChecker) exprCapKind(e ast.Expr) string {
	info := c.p.Pkg.Info
	if tv, ok := info.Types[e]; ok {
		if kind := c.capKind(tv.Type); kind != "" {
			return kind
		}
	}
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
				for _, arg := range call.Args[1:] {
					if tv, ok := info.Types[arg]; ok {
						if kind := c.capKind(tv.Type); kind != "" {
							return kind
						}
					}
				}
			}
		}
	}
	return ""
}

// rootObject resolves the base identifier of an lvalue chain
// (pkgvar.field[i] -> pkgvar).
func rootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if o := info.Uses[x]; o != nil {
				return o
			}
			return info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func isPackageLevel(o types.Object) bool {
	v, ok := o.(*types.Var)
	return ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

func (c *capChecker) checkAssign(as *ast.AssignStmt) {
	info := c.p.Pkg.Info
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) && len(as.Rhs) != 1 {
			break
		}
		rhs := as.Rhs[min(i, len(as.Rhs)-1)]
		kind := c.exprCapKind(rhs)
		if kind == "" {
			continue
		}
		// Rule 1: stored under a package-level variable.
		if root := rootObject(info, lhs); root != nil && isPackageLevel(root) {
			c.p.Reportf(as.Pos(), capescapeHint,
				"%s escapes to package-level variable %q; capabilities must not outlive their owner's scope",
				kind, root.Name())
			continue
		}
		// Rule 2: stored through an exported field of a non-carrier type.
		if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
			c.checkFieldStore(sel, kind, as.Pos())
		}
	}
}

// checkFieldStore flags `x.Field = cap` when Field is exported and x's type
// is not an audited //demi:carrier transfer record.
func (c *capChecker) checkFieldStore(sel *ast.SelectorExpr, kind string, pos token.Pos) {
	info := c.p.Pkg.Info
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return
	}
	fv, ok := s.Obj().(*types.Var)
	if !ok || !fv.Exported() {
		return
	}
	if tn := namedOwner(s.Recv()); tn == nil || c.p.Mod.IsCarrier(tn) {
		return
	} else {
		c.p.Reportf(pos, capescapeHint,
			"%s escapes through exported field %s.%s of a type not annotated //demi:carrier",
			kind, tn.Name(), fv.Name())
	}
}

// checkCompositeLit flags capability values placed in exported fields of
// non-carrier struct literals.
func (c *capChecker) checkCompositeLit(lit *ast.CompositeLit) {
	info := c.p.Pkg.Info
	tv, ok := info.Types[lit]
	if !ok {
		return
	}
	tn := namedOwner(tv.Type)
	if tn == nil || c.p.Mod.IsCarrier(tn) {
		return
	}
	st, ok := tn.Type().Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i, elt := range lit.Elts {
		var value ast.Expr
		var field *types.Var
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			value = kv.Value
			if id, ok := kv.Key.(*ast.Ident); ok {
				field, _ = info.Uses[id].(*types.Var)
			}
		} else {
			value = elt
			if i < st.NumFields() {
				field = st.Field(i)
			}
		}
		if field == nil || !field.Exported() {
			continue
		}
		if kind := c.exprCapKind(value); kind != "" {
			c.p.Reportf(value.Pos(), capescapeHint,
				"%s escapes through exported field %s.%s of a type not annotated //demi:carrier",
				kind, tn.Name(), field.Name())
		}
	}
}

// namedOwner unwraps a (possibly pointer) type to its named type's
// TypeName.
func namedOwner(t types.Type) *types.TypeName {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj()
	}
	return nil
}

// checkFuncLit flags closures that capture a capability from the enclosing
// scope AND outlive the call: returned, stored in a package variable or
// struct field, or launched with go. Closures passed as plain call
// arguments (scheduler Spawn bodies, pipeline stages) are the normal way
// to hand work to the runtime and are not flagged.
func (c *capChecker) checkFuncLit(lit *ast.FuncLit, stack []ast.Node) {
	how := c.escapingContext(stack, lit)
	if how == "" {
		return
	}
	v, kind := c.capturedCapability(lit)
	if v == nil {
		return
	}
	c.p.Reportf(lit.Pos(), capescapeHint,
		"closure %s captures %s %q, which then outlives the call that owns it",
		how, kind, v.Name())
}

// escapingContext classifies how a closure outlives its call, or "".
func (c *capChecker) escapingContext(stack []ast.Node, lit *ast.FuncLit) string {
	info := c.p.Pkg.Info
	for i := len(stack) - 1; i >= 0; i-- {
		switch x := stack[i].(type) {
		case *ast.ReturnStmt:
			return "returned from the function"
		case *ast.GoStmt:
			return "launched with go"
		case *ast.AssignStmt:
			// Only stores that themselves escape: a package variable or a
			// struct field. `f := func(){...}` stays function-scoped.
			for _, lhs := range x.Lhs {
				if root := rootObject(info, lhs); root != nil && isPackageLevel(root) {
					return "stored in a package variable"
				}
				if _, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
					return "stored in a struct field"
				}
			}
			return ""
		case *ast.KeyValueExpr, *ast.CompositeLit:
			continue // stored inside a literal: keep climbing to the store
		case *ast.CallExpr:
			if x.Fun == lit {
				continue // immediately-invoked literal: does not outlive
			}
			return "" // plain call argument: consumed by the callee
		case *ast.ExprStmt, *ast.DeferStmt:
			return ""
		}
	}
	return ""
}

// capturedCapability finds a capability-typed variable referenced inside
// the literal but declared outside it (and below package scope — package
// vars are rule 1's business).
func (c *capChecker) capturedCapability(lit *ast.FuncLit) (*types.Var, string) {
	info := c.p.Pkg.Info
	var found *types.Var
	var kind string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() || isPackageLevel(v) {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true // declared inside the closure (or its params)
		}
		if k := c.capKind(v.Type()); k != "" {
			found, kind = v, k
		}
		return true
	})
	return found, kind
}
