package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// NonAllocAnalyzer enforces the //demi:nonalloc annotation: the paper's
// core performance claim (§5) rests on the I/O fast path doing zero heap
// allocations per operation, and the alloc-guard benchmark in CI measures
// that only for the paths the benchmark drives. Annotated functions are
// rejected at build time if they contain:
//
//   - make/new/&T{...}/slice-or-map literals, map writes, or go statements;
//   - append not guarded by a cap() check on the destination;
//   - capturing closures (a closure that captures variables is heap-allocated);
//   - string concatenation or string<->[]byte conversions;
//   - interface conversions of non-pointer values (these box and escape);
//   - calls to functions that are neither annotated //demi:nonalloc nor
//     provably allocation-free by a transitive summary;
//   - dynamic calls (func values, interface methods) whose target cannot be
//     resolved — allowlist these after a manual audit.
//
// The transitive summary is a memoized fixed point over the module's call
// graph: a function allocates if its body contains any construct above or
// calls a function that does. Cycles resolve optimistically; functions
// without source (stdlib beyond a small audited set, external code) are
// assumed to allocate.
func NonAllocAnalyzer() *Analyzer {
	a := &Analyzer{
		Name: "nonalloc",
		Doc:  "functions annotated //demi:nonalloc must not allocate, directly or transitively",
	}
	a.Run = func(p *Pass) { runNonAlloc(p) }
	return a
}

func runNonAlloc(p *Pass) {
	for _, file := range p.Pkg.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasNonAllocAnnotation(fd) {
				continue
			}
			c := &nonallocChecker{m: p.Mod, pkg: p.Pkg, report: p.Reportf}
			c.checkDecl(fd)
		}
	}
}

// Allocation-summary memo states (Module.allocMemo).
const (
	allocInProgress int8 = 1 // on the current summary stack: cycle, assume clean
	allocClean      int8 = 2
	allocAllocates  int8 = 3
)

// allocates computes (memoized) whether fn may allocate, for call sites
// inside annotated functions. Annotated functions are trusted by contract:
// their own bodies are checked where they are declared.
func (m *Module) allocates(fn *types.Func) bool {
	m.index()
	if m.nonalloc[fn] {
		return false
	}
	if v := m.allocMemo[fn]; v != 0 {
		return v == allocAllocates
	}
	// After Precompute freezes the summaries, cache misses (only external
	// functions — every module function was warmed) are answered without
	// writing the memo, keeping the parallel analysis phase read-only.
	memoize := m.sums == nil || !m.sums.frozen
	pkg := fn.Pkg()
	if pkg == nil {
		return true
	}
	if pkg.Path() != m.Path && !strings.HasPrefix(pkg.Path(), m.Path+"/") {
		clean := stdlibClean(fn)
		if memoize {
			if clean {
				m.allocMemo[fn] = allocClean
			} else {
				m.allocMemo[fn] = allocAllocates
			}
		}
		return !clean
	}
	fd := m.decls[fn]
	if fd == nil || fd.Body == nil {
		if memoize {
			m.allocMemo[fn] = allocAllocates // no source: assume the worst
		}
		return true
	}
	if !memoize {
		return true // unwarmed module function post-freeze: assume the worst
	}
	m.allocMemo[fn] = allocInProgress
	c := &nonallocChecker{m: m, pkg: m.declPkg[fn]}
	c.checkDecl(fd)
	if c.found {
		m.allocMemo[fn] = allocAllocates
	} else {
		m.allocMemo[fn] = allocClean
	}
	return c.found
}

// stdlibClean is the audited set of standard-library calls known not to
// allocate: bit twiddling, atomics, and fixed-width binary encoding.
func stdlibClean(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	switch pkg.Path() {
	case "math/bits", "sync/atomic", "math":
		return true
	case "encoding/binary":
		n := fn.Name()
		return strings.HasPrefix(n, "PutUint") || strings.HasPrefix(n, "Uint")
	}
	return false
}

// A nonallocChecker walks one function body looking for allocating
// constructs. With report set it emits findings (annotated-function mode);
// with report nil it only records whether anything allocates (summary mode,
// where the walk stops at the first hit).
type nonallocChecker struct {
	m      *Module
	pkg    *Package
	decl   *ast.FuncDecl // function under check, for top-level return types
	report func(pos token.Pos, hint, format string, args ...any)
	found  bool
}

func (c *nonallocChecker) flag(pos token.Pos, hint, format string, args ...any) {
	c.found = true
	if c.report != nil {
		c.report(pos, hint, format, args...)
	}
}

func (c *nonallocChecker) checkDecl(fd *ast.FuncDecl) {
	c.decl = fd
	info := c.pkg.Info
	walkStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		if c.found && c.report == nil {
			return false // summary mode: one hit settles it
		}
		switch s := n.(type) {
		case *ast.GoStmt:
			c.flag(s.Pos(), "hot-path code must not spawn goroutines", "go statement allocates a goroutine")
		case *ast.FuncLit:
			if cap := capturedVar(info, s); cap != nil {
				c.flag(s.Pos(), "hoist the closure to a named function or pass state explicitly",
					"closure captures %q and is heap-allocated", cap.Name())
			}
		case *ast.CompositeLit:
			if tv, ok := info.Types[s]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice:
					c.flag(s.Pos(), "preallocate the slice outside the hot path", "slice literal allocates")
				case *types.Map:
					c.flag(s.Pos(), "preallocate the map outside the hot path", "map literal allocates")
				}
			}
		case *ast.UnaryExpr:
			if s.Op == token.AND {
				if _, ok := ast.Unparen(s.X).(*ast.CompositeLit); ok {
					c.flag(s.Pos(), "reuse a preallocated value instead of &T{...}",
						"&composite-literal escapes to the heap")
				}
			}
		case *ast.BinaryExpr:
			if s.Op == token.ADD && isStringType(info, s.X) {
				c.flag(s.Pos(), "format into a preallocated buffer instead of concatenating",
					"string concatenation allocates")
			}
		case *ast.AssignStmt:
			c.checkAssign(s)
		case *ast.ReturnStmt:
			c.checkReturn(s, stack)
		case *ast.CallExpr:
			c.checkCall(s, stack)
		}
		return true
	})
}

// capturedVar returns a variable the closure captures from an enclosing
// function, or nil. Package-level variables are accessed directly and do
// not force a heap-allocated closure.
func capturedVar(info *types.Info, lit *ast.FuncLit) *types.Var {
	var captured *types.Var
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() || v.Pkg() == nil {
			return true
		}
		if v.Parent() == v.Pkg().Scope() {
			return true // package-level: no capture
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captured = v
			return false
		}
		return true
	})
	return captured
}

func (c *nonallocChecker) checkAssign(s *ast.AssignStmt) {
	info := c.pkg.Info
	if s.Tok == token.ADD_ASSIGN && len(s.Lhs) == 1 && isStringType(info, s.Lhs[0]) {
		c.flag(s.Pos(), "format into a preallocated buffer instead of concatenating",
			"string += allocates")
		return
	}
	for _, l := range s.Lhs {
		if ix, ok := ast.Unparen(l).(*ast.IndexExpr); ok {
			if tv, ok := info.Types[ix.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					c.flag(l.Pos(), "map writes can trigger rehash allocation; use a preallocated structure",
						"map assignment may allocate")
				}
			}
		}
	}
	// Implicit interface conversions: concrete value assigned to an
	// interface-typed destination boxes the value.
	if s.Tok == token.ASSIGN && len(s.Lhs) == len(s.Rhs) {
		for i := range s.Lhs {
			lt, lok := info.Types[s.Lhs[i]]
			rt, rok := info.Types[s.Rhs[i]]
			if lok && rok && types.IsInterface(lt.Type) && boxes(rt.Type) {
				c.flag(s.Rhs[i].Pos(), "avoid boxing on the hot path; keep the value concrete or pass a pointer",
					"assigning non-pointer %s to interface allocates", rt.Type)
			}
		}
	}
}

// checkReturn flags returns that implicitly box a non-pointer value into an
// interface result.
func (c *nonallocChecker) checkReturn(ret *ast.ReturnStmt, stack []ast.Node) {
	info := c.pkg.Info
	sig := enclosingSignature(info, stack)
	if sig == nil {
		// Top-level return: the declaring function is not on the stack
		// (the walk starts at its body), so resolve it directly.
		if fn, ok := info.Defs[c.decl.Name].(*types.Func); ok {
			sig = fn.Type().(*types.Signature)
		}
	}
	if sig == nil || sig.Results().Len() != len(ret.Results) {
		return
	}
	for i, r := range ret.Results {
		res := sig.Results().At(i).Type()
		tv, ok := info.Types[r]
		if ok && types.IsInterface(res) && boxes(tv.Type) {
			c.flag(r.Pos(), "avoid boxing on the hot path; return a pointer or a concrete type",
				"returning non-pointer %s as interface allocates", tv.Type)
		}
	}
}

// enclosingSignature resolves the signature of the innermost function on
// the stack.
func enclosingSignature(info *types.Info, stack []ast.Node) *types.Signature {
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncLit:
			if tv, ok := info.Types[f]; ok {
				if sig, ok := tv.Type.(*types.Signature); ok {
					return sig
				}
			}
			return nil
		case *ast.FuncDecl:
			if fn, ok := info.Defs[f.Name].(*types.Func); ok {
				return fn.Type().(*types.Signature)
			}
			return nil
		}
	}
	return nil
}

func (c *nonallocChecker) checkCall(call *ast.CallExpr, stack []ast.Node) {
	info := c.pkg.Info
	// Type conversion?
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		c.checkConversion(call, tv.Type)
		return
	}
	// Builtin?
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			c.checkBuiltin(call, b.Name(), stack)
			return
		}
	}
	c.checkCallArgs(call)
	fn := staticCallee(info, call)
	if fn == nil {
		c.flag(call.Pos(), "resolve the call statically, or allowlist it after auditing the dynamic targets",
			"dynamic call %s: target cannot be proven allocation-free", exprString(call.Fun))
		return
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil && types.IsInterface(recv.Type()) {
		c.flag(call.Pos(), "devirtualize the call, or allowlist it after auditing all implementations",
			"interface method call %s: implementations cannot be proven allocation-free", exprString(call.Fun))
		return
	}
	if c.m.allocates(fn) {
		c.flag(call.Pos(), "annotate the callee //demi:nonalloc (and make it comply), or allowlist after audit",
			"call to %s may allocate", fnDisplay(c.m, fn))
	}
}

func (c *nonallocChecker) checkBuiltin(call *ast.CallExpr, name string, stack []ast.Node) {
	switch name {
	case "len", "cap", "copy", "delete", "panic", "min", "max", "recover", "clear":
		return
	case "make":
		c.flag(call.Pos(), "preallocate outside the hot path", "make allocates")
	case "new":
		c.flag(call.Pos(), "preallocate outside the hot path", "new allocates")
	case "append":
		if len(call.Args) > 0 && appendCapGuarded(stack, call.Args[0]) {
			return // append under `... cap(dst) ...` guard cannot grow
		}
		c.flag(call.Pos(), "guard the append with a cap() check (if len(s) < cap(s) { s = append(s, v) })",
			"append without a capacity guard may grow and allocate")
	default:
		c.flag(call.Pos(), "", "builtin %s may allocate", name)
	}
}

// appendCapGuarded reports whether an enclosing if condition mentions
// cap(<dst>) for the append destination — the preallocated-ring idiom
// `if len(s) < cap(s) { s = append(s, v) }`.
func appendCapGuarded(stack []ast.Node, dst ast.Expr) bool {
	want := types.ExprString(dst)
	for _, n := range stack {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			continue
		}
		guarded := false
		ast.Inspect(ifs.Cond, func(c ast.Node) bool {
			call, ok := c.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "cap" && len(call.Args) == 1 {
				if types.ExprString(call.Args[0]) == want {
					guarded = true
					return false
				}
			}
			return true
		})
		if guarded {
			return true
		}
	}
	return false
}

// checkConversion flags explicit conversions that allocate: boxing a
// non-pointer value into an interface, and string<->[]byte copies.
func (c *nonallocChecker) checkConversion(call *ast.CallExpr, target types.Type) {
	if len(call.Args) != 1 {
		return
	}
	info := c.pkg.Info
	tv, ok := info.Types[call.Args[0]]
	if !ok {
		return
	}
	src := tv.Type
	if types.IsInterface(target) && boxes(src) {
		c.flag(call.Pos(), "avoid boxing on the hot path; keep the value concrete or pass a pointer",
			"converting non-pointer %s to interface allocates", src)
		return
	}
	if isByteString(target, src) || isByteString(src, target) {
		c.flag(call.Pos(), "operate on the existing representation; string<->[]byte conversion copies",
			"string<->[]byte conversion allocates a copy")
	}
}

// isByteString reports a string->[]byte (or []rune) direction pair.
func isByteString(to, from types.Type) bool {
	if from == nil || to == nil {
		return false
	}
	if b, ok := from.Underlying().(*types.Basic); !ok || b.Info()&types.IsString == 0 {
		return false
	}
	sl, ok := to.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	e, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (e.Kind() == types.Byte || e.Kind() == types.Rune || e.Kind() == types.Uint8 || e.Kind() == types.Int32)
}

// checkCallArgs flags implicit boxing at call boundaries: a non-pointer
// value passed where the parameter is an interface.
func (c *nonallocChecker) checkCallArgs(call *ast.CallExpr) {
	info := c.pkg.Info
	tv, ok := info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis.IsValid() {
				continue // s... passes the slice through, no boxing
			}
			pt = sig.Params().At(np - 1).Type().(*types.Slice).Elem()
		case i < np:
			pt = sig.Params().At(i).Type()
		default:
			continue
		}
		at, ok := info.Types[arg]
		if ok && types.IsInterface(pt) && boxes(at.Type) {
			c.flag(arg.Pos(), "avoid boxing on the hot path; pass a pointer or devirtualize the callee",
				"passing non-pointer %s as interface argument allocates", at.Type)
		}
	}
}

// boxes reports whether converting a value of type t to an interface
// requires a heap allocation: true for every type that is not already
// pointer-shaped (pointers, maps, channels, funcs, unsafe.Pointer) and not
// nil/interface.
func boxes(t types.Type) bool {
	if t == nil {
		return false
	}
	if b, ok := t.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Signature, *types.Map, *types.Chan:
		return false
	case *types.Basic:
		if t.Underlying().(*types.Basic).Kind() == types.UnsafePointer {
			return false
		}
	}
	return true
}

// isStringType reports whether the expression has string type.
func isStringType(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// fnDisplay renders a function name for diagnostics, trimming the module
// prefix from package paths.
func fnDisplay(m *Module, fn *types.Func) string {
	name := fn.Name()
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			name = n.Obj().Name() + "." + name
		}
		return name
	}
	if pkg := fn.Pkg(); pkg != nil {
		p := strings.TrimPrefix(pkg.Path(), m.Path+"/")
		if i := strings.LastIndex(p, "/"); i >= 0 {
			p = p[i+1:]
		}
		return p + "." + name
	}
	return name
}
