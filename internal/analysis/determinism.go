package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// DeterminismConfig selects which packages live inside the simulated world
// and must therefore be bit-for-bit reproducible from a seed.
type DeterminismConfig struct {
	// PkgSubstrings: a package is checked when its import path contains any
	// of these substrings.
	PkgSubstrings []string
}

// defaultDeterministicPkgs covers everything that runs under the simulation
// harness: the simulated network and devices, the cooperative scheduler,
// the fault engine, the wire codecs, the TCP/UDP stacks, and the core/
// memory layers they pull in. sim/rng.go's seeded xorshift is the one
// sanctioned randomness source; sim's virtual clock the one time source.
var defaultDeterministicPkgs = []string{
	"/internal/sim",
	"/internal/simnet",
	"/internal/sched",
	"/internal/faults",
	"/internal/wire",
	"/internal/catnip",
	"/internal/catmint",
	"/internal/catmem",
	"/internal/catloop",
	"/internal/cattree",
	"/internal/core",
	"/internal/memory",
	"/internal/dtrace",
	"/internal/devices",
	"/internal/dpdkdev",
	"/internal/rdmadev",
	"/internal/spdkdev",
	"/internal/multicore",
	"/internal/rack",
	"/internal/tenant",
}

// bannedTimeFuncs are the time-package entry points that read or depend on
// the wall clock. time.Duration arithmetic and constants remain fine.
var bannedTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

// DeterminismAnalyzer rejects nondeterminism inside the simulated world
// (paper §6: the simulation harness replays failures from a seed, which
// only works if sim-world code never consults the wall clock, the global
// math/rand stream, or Go's randomized map iteration order when producing
// output). pkgs overrides the default package set; nil keeps the default.
func DeterminismAnalyzer(pkgs []string) *Analyzer {
	cfg := DeterminismConfig{PkgSubstrings: pkgs}
	if cfg.PkgSubstrings == nil {
		cfg.PkgSubstrings = defaultDeterministicPkgs
	}
	a := &Analyzer{
		Name: "determinism",
		Doc:  "sim-world packages may not use wall-clock time, global math/rand, or map order in outputs",
	}
	a.Run = func(p *Pass) { runDeterminism(p, cfg) }
	return a
}

func runDeterminism(p *Pass, cfg DeterminismConfig) {
	checked := false
	for _, sub := range cfg.PkgSubstrings {
		if strings.Contains(p.Pkg.Path, sub) {
			checked = true
			break
		}
	}
	if !checked {
		return
	}
	info := p.Pkg.Info
	for _, file := range p.Pkg.Files {
		for _, imp := range file.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == "math/rand" || path == "math/rand/v2" {
				p.Reportf(imp.Pos(), "use the seeded sim.Rand (internal/sim/rng.go) instead",
					"sim-world package imports %s: global RNG state breaks seeded replay", path)
			}
		}
		walkStack(file, func(n ast.Node, stack []ast.Node) bool {
			switch s := n.(type) {
			case *ast.CallExpr:
				checkTimeCall(p, info, s)
			case *ast.RangeStmt:
				checkMapRange(p, info, s)
			}
			return true
		})
	}
}

// checkTimeCall flags calls to the banned wall-clock functions of package
// time.
func checkTimeCall(p *Pass, info *types.Info, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !bannedTimeFuncs[sel.Sel.Name] {
		return
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pkg, ok := info.Uses[id].(*types.PkgName)
	if !ok || pkg.Imported().Path() != "time" {
		return
	}
	p.Reportf(call.Pos(), "take time from the sim.Clock passed into this component",
		"sim-world code calls time.%s: wall-clock reads break seeded replay", sel.Sel.Name)
}

// checkMapRange flags ranging over a map when the loop body feeds values
// into an output sink (printing, writers, telemetry, marshalling):
// iteration order is randomized per run, so such loops emit
// nondeterministic output. Map ranges that only aggregate (sum, collect
// then sort) are fine.
func checkMapRange(p *Pass, info *types.Info, rng *ast.RangeStmt) {
	tv, ok := info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	var sinkName string
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if sinkName != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name := sinkCallName(info, call); name != "" {
			sinkName = name
			return false
		}
		return true
	})
	if sinkName == "" {
		return
	}
	p.Reportf(rng.Pos(), "collect the keys, sort them, and iterate the sorted slice",
		"map iteration order feeds %s: output depends on randomized map order", sinkName)
}

// sinkCallName classifies a call as an output sink, returning a printable
// name for the diagnostic ("" when it is not a sink).
func sinkCallName(info *types.Info, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	name := sel.Sel.Name
	// fmt print family.
	if id, ok := sel.X.(*ast.Ident); ok {
		if pkg, ok := info.Uses[id].(*types.PkgName); ok && pkg.Imported().Path() == "fmt" {
			if strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint") || strings.HasPrefix(name, "Sprint") {
				return "fmt." + name
			}
			return ""
		}
	}
	// Writers and wire marshalling on any receiver.
	if strings.HasPrefix(name, "Write") || strings.HasPrefix(name, "Marshal") {
		return "." + name
	}
	// Telemetry recording: only when the method's receiver comes from the
	// telemetry package (plain wg.Add/m.Set in a map range are fine).
	switch name {
	case "Inc", "Add", "Set", "Observe", "Record":
		if s, ok := info.Selections[sel]; ok {
			if fn, ok := s.Obj().(*types.Func); ok && fn.Pkg() != nil &&
				strings.HasSuffix(fn.Pkg().Path(), "internal/telemetry") {
				return "telemetry." + name
			}
		}
	}
	return ""
}
