module demikernel

go 1.22
